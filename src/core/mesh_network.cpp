#include "wimesh/core/mesh_network.h"

#include <algorithm>
#include <unordered_map>

#include "wimesh/common/log.h"
#include "wimesh/common/strings.h"
#include "wimesh/des/simulator.h"
#include "wimesh/faults/runtime.h"
#include "wimesh/tdma/overlay.h"
#include "wimesh/trace/trace.h"
#include "wimesh/traffic/sources.h"
#include "wimesh/wifi/channel.h"
#include "wimesh/wifi/dcf_mac.h"
#include "wimesh/wifi/edca_mac.h"

namespace wimesh {

double SimulationResult::aggregate_throughput_bps() const {
  double total = 0.0;
  for (const FlowResult& f : flows) {
    total += f.stats.throughput_bps(measured_interval);
  }
  return total;
}

double SimulationResult::mean_delay_ms() const {
  double sum = 0.0;
  std::size_t n = 0;
  for (const FlowResult& f : flows) {
    if (f.stats.delays_ms().empty()) continue;
    sum += f.stats.delays_ms().mean() *
           static_cast<double>(f.stats.delays_ms().count());
    n += f.stats.delays_ms().count();
  }
  return n == 0 ? 0.0 : sum / static_cast<double>(n);
}

double SimulationResult::max_loss_rate() const {
  double worst = 0.0;
  for (const FlowResult& f : flows) {
    worst = std::max(worst, f.stats.loss_rate());
  }
  return worst;
}

const FlowResult* SimulationResult::find_flow(int flow_id) const {
  for (const FlowResult& f : flows) {
    if (f.spec.id == flow_id) return &f;
  }
  return nullptr;
}

namespace {

MeshConfig resolve_guard(MeshConfig config) {
  if (config.auto_guard) {
    // The guard must absorb the mutual misalignment of any two nodes; the
    // worst pair sits at the sync tree's maximum depth.
    const auto hops = bfs_hops(config.topology.graph, 0);
    const int max_hops = *std::max_element(hops.begin(), hops.end());
    config.emulation.guard_time = config.sync.recommended_guard(max_hops);
  }
  return config;
}

}  // namespace

namespace {

// Sub-stream label for deriving the radio seed from the run seed ("radio"
// in ASCII); any fixed constant works, it only has to be stable.
constexpr std::uint64_t kRadioSeedStream = 0x726164696f;

std::unique_ptr<radio::RadioEnvironment> make_radio_env(
    const MeshConfig& config) {
  if (!config.radio.enabled) return nullptr;
  const std::uint64_t seed =
      config.radio.seed != 0
          ? config.radio.seed
          : Rng::derive_stream(config.seed, kRadioSeedStream);
  return std::make_unique<radio::RadioEnvironment>(
      config.radio, config.topology.positions, config.phy, seed);
}

}  // namespace

MeshNetwork::MeshNetwork(MeshConfig config)
    : config_(resolve_guard(std::move(config))),
      radio_env_(make_radio_env(config_)),
      planner_(config_.topology,
               RadioModel(config_.comm_range, config_.interference_range),
               config_.emulation, config_.phy, config_.routing,
               radio_env_.get()) {}

void MeshNetwork::add_flow(FlowSpec spec) {
  WIMESH_ASSERT_MSG(!has_plan_, "flows must be declared before planning");
  flows_.push_back(std::move(spec));
}

void MeshNetwork::add_voip_call(int id_base, NodeId a, NodeId b,
                                const VoipCodec& codec, SimTime max_delay) {
  add_flow(FlowSpec::voip(id_base, a, b, codec, max_delay));
  add_flow(FlowSpec::voip(id_base + 1, b, a, codec, max_delay));
}

Expected<const MeshPlan*> MeshNetwork::compute_plan() {
  zones::ZoneOptions zone_opts;
  if (config_.zones > 0) {
    zone_opts.zone_count = config_.zones;
    // ilp.threads is already the scenario's wall-clock parallelism knob;
    // the zone fan-out consumes it as its worker count (per-zone solves
    // run single-threaded underneath).
    zone_opts.jobs = config_.ilp.threads;
  }
  auto result = planner_.plan(flows_, config_.scheduler, config_.ilp,
                              PlanObjective::kMinimizeSlots,
                              config_.zones > 0 ? &zone_opts : nullptr);
  if (!result.has_value()) return make_error(result.error());
  plan_ = std::move(*result);
  has_plan_ = true;
  return Expected<const MeshPlan*>(&plan_);
}

void MeshNetwork::override_schedule(MeshSchedule schedule) {
  WIMESH_ASSERT_MSG(has_plan_, "override requires a computed plan");
  WIMESH_ASSERT_MSG(schedule.link_count() == plan_.links.count(),
                    "schedule was built for a different link set");
  plan_.schedule = std::move(schedule);
  plan_.guaranteed_slots_used = plan_.schedule.used_slots();
  for (FlowPlan& f : plan_.guaranteed) {
    FlowPath fp;
    fp.links = f.links;
    const int slots = worst_case_delay_slots(
        plan_.schedule, fp, config_.emulation.frame.total_slots());
    f.worst_case_delay = config_.emulation.frame.slot_duration() * slots;
    f.delay_bound_met = f.worst_case_delay <= f.spec.max_delay;
  }
}

std::size_t MeshNetwork::admit_incrementally() {
  auto result =
      planner_.admit_incrementally(flows_, config_.scheduler, config_.ilp);
  if (result.admitted > 0) {
    plan_ = std::move(result.plan);
    has_plan_ = true;
    flows_.resize(result.admitted);
  }
  return result.admitted;
}

SimulationResult MeshNetwork::run(MacMode mode, SimTime duration,
                                  SimTime drain) {
  WIMESH_ASSERT_MSG(has_plan_ || mode != MacMode::kTdmaOverlay,
                    "kTdmaOverlay requires a computed plan");
  if (!has_plan_) {
    // Contention-MAC runs still need routes; plan with the greedy scheduler
    // just to obtain routing tables (the schedule itself is unused).
    auto fallback = planner_.plan(flows_, SchedulerKind::kGreedy, config_.ilp);
    WIMESH_ASSERT_MSG(fallback.has_value(),
                      "routing plan failed for DCF baseline run");
    plan_ = std::move(*fallback);
    has_plan_ = true;
  }

  Simulator sim(config_.event_queue);
  Rng root(config_.seed);
  const NodeId n = config_.topology.node_count();
  const RadioModel radio(config_.comm_range, config_.interference_range);

  const bool rts_mode = mode == MacMode::kDcf && config_.dcf_rts_cts;
  WifiChannel channel(sim, config_.topology.positions, radio, config_.phy,
                      ErrorModel{config_.packet_error_rate}, root.split(),
                      /*deliver_overheard=*/rts_mode);
  // Physical radio model (scenario 'radio =' key). The attach changes no
  // RNG splits, so radio-off runs stay byte-identical to builds without
  // the subsystem.
  if (radio_env_ != nullptr) channel.set_radio(radio_env_.get());

  // Invariant auditor (opt-in). Pure observer: it draws no randomness and
  // schedules no events, so results are identical with auditing on or off.
  std::unique_ptr<audit::InvariantAuditor> auditor;
  if (config_.audit) {
    audit::AuditConfig audit_cfg;
    audit_cfg.fail_fast = config_.audit_fail_fast;
    auditor = std::make_unique<audit::InvariantAuditor>(sim, audit_cfg);
    if (mode == MacMode::kTdmaOverlay) {
      // Arm the conflict and slot monitors against the deployed schedule.
      auditor->install_schedule(plan_.links, plan_.conflicts, plan_.schedule,
                                config_.emulation.frame,
                                config_.emulation.guard_time);
    }
    channel.set_probe(auditor.get());
  }

  SimulationResult result;
  result.measured_interval = duration;
  std::unordered_map<int, std::size_t> flow_index;
  for (const FlowSpec& spec : flows_) {
    flow_index[spec.id] = result.flows.size();
    FlowResult fr;
    fr.spec = spec;
    if (const FlowPlan* fp = plan_.find_flow(spec.id)) {
      fr.planned_worst_delay = fp->worst_case_delay;
      fr.delay_bound_met = fp->delay_bound_met;
    }
    result.flows.push_back(std::move(fr));
  }

  std::vector<std::unique_ptr<DcfMac>> macs;
  std::vector<std::unique_ptr<EdcaMac>> edca_macs;
  std::vector<std::unique_ptr<TdmaOverlayNode>> overlays;
  std::unique_ptr<SyncProtocol> sync;
  // Fault injection (constructed last so its RNG split cannot perturb
  // fault-free runs). `live_plan` is the plan traffic is forwarded under:
  // plan_ until the first repaired schedule activates at a frame boundary.
  std::unique_ptr<faults::FaultRuntime> fault_rt;
  const MeshPlan* live_plan = &plan_;

  // A flow whose route crosses a partition cut gets its drops typed
  // kPartitioned — never a generic no-route/no-capacity — so split-brain
  // loss is attributable in the audit report.
  const auto typed_drop = [&](audit::DropReason fallback, int flow_id) {
    if (fault_rt && fault_rt->flow_severed(flow_id)) {
      return audit::DropReason::kPartitioned;
    }
    return fallback;
  };

  // Hands a packet to the node's contention MAC, honoring the flow's
  // access category under EDCA.
  const auto mac_send = [&](NodeId at, MacPacket p, ServiceClass service) {
    if (mode == MacMode::kEdca) {
      edca_macs[static_cast<std::size_t>(at)]->send(
          p, service == ServiceClass::kGuaranteed
                 ? AccessCategory::kVoice
                 : AccessCategory::kBestEffort);
    } else {
      macs[static_cast<std::size_t>(at)]->send(p);
    }
  };

  // ---- Delivery path shared by all MACs.
  const auto on_delivered = [&](NodeId at, const MacPacket& packet) {
    const auto it = flow_index.find(packet.flow_id);
    if (it == flow_index.end()) return;
    FlowResult& fr = result.flows[it->second];
    if (fr.spec.dst == at) {
      if (auditor) auditor->on_packet_delivered(packet, at);
      if (fault_rt) fault_rt->on_flow_delivered(packet.flow_id);
      if (packet.created_at <= duration) {
        fr.stats.on_delivered(packet.bytes, sim.now() - packet.created_at);
      }
      return;
    }
    // Forward to the next hop.
    const NodeId next = live_plan->next_hop(packet.flow_id, at);
    if (next == kInvalidNode) {  // stale route; drop
      if (auditor) {
        auditor->on_packet_dropped(
            packet, typed_drop(audit::DropReason::kNoRoute, packet.flow_id));
      }
      return;
    }
    if (fault_rt && !fault_rt->node_up(next)) {
      // Known-dead next hop: drop at the relay instead of burning MAC
      // retries toward a silent radio.
      if (auditor) {
        auditor->on_packet_dropped(
            packet, typed_drop(audit::DropReason::kNodeDown, packet.flow_id));
      }
      return;
    }
    if (mode == MacMode::kTdmaOverlay) {
      const LinkId link = live_plan->out_link(packet.flow_id, at);
      if (live_plan->schedule.all_grants(link).empty()) {  // no capacity
        if (auditor) {
          auditor->on_packet_dropped(
              packet,
              typed_drop(audit::DropReason::kNoCapacity, packet.flow_id));
        }
        return;
      }
      if (!overlays[static_cast<std::size_t>(at)]->enqueue(
              link, packet, fr.spec.service == ServiceClass::kGuaranteed)) {
        // The packet raced a schedule hot-swap and its link was revoked.
        if (auditor) {
          auditor->on_packet_dropped(
              packet,
              typed_drop(audit::DropReason::kScheduleRevoked, packet.flow_id));
        }
      }
    } else {
      MacPacket p = packet;
      p.to = next;
      mac_send(at, p, fr.spec.service);
    }
  };

  // ---- MACs.
  for (NodeId node = 0; node < n; ++node) {
    if (mode == MacMode::kEdca) {
      EdcaMac::Callbacks cb;
      cb.on_delivered = [&, node](const MacPacket& p) {
        on_delivered(node, p);
      };
      cb.on_dropped = [&](const MacPacket& p, AccessCategory,
                          MacDropCause cause) {
        ++result.mac_drops;
        if (auditor) {
          auditor->on_packet_dropped(
              p, cause == MacDropCause::kQueueOverflow
                     ? audit::DropReason::kMacQueueOverflow
                     : audit::DropReason::kRetryExhausted);
        }
      };
      edca_macs.push_back(std::make_unique<EdcaMac>(sim, channel, node,
                                                    root.split(), std::move(cb)));
      continue;
    }
    DcfMac::Callbacks cb;
    cb.on_delivered = [&, node](const MacPacket& p) { on_delivered(node, p); };
    cb.on_dropped = [&](const MacPacket& p, MacDropCause cause) {
      ++result.mac_drops;
      if (auditor) {
        auditor->on_packet_dropped(
            p, cause == MacDropCause::kQueueOverflow
                   ? audit::DropReason::kMacQueueOverflow
                   : audit::DropReason::kRetryExhausted);
      }
    };
    DcfMac::Config mac_cfg;
    mac_cfg.zero_backoff = mode == MacMode::kTdmaOverlay;
    mac_cfg.rts_cts = rts_mode;
    macs.push_back(std::make_unique<DcfMac>(sim, channel, node, root.split(),
                                            std::move(cb), mac_cfg));
  }

  // Per-transmitter grant lists (primary + best-effort extras) of a plan.
  const auto grants_by_node = [n](const MeshPlan& plan) {
    std::vector<std::vector<TdmaOverlayNode::TxGrant>> grants(
        static_cast<std::size_t>(n));
    for (LinkId l = 0; l < plan.links.count(); ++l) {
      const Link& link = plan.links.link(l);
      for (const SlotRange& range : plan.schedule.all_grants(l)) {
        grants[static_cast<std::size_t>(link.from)].push_back(
            TdmaOverlayNode::TxGrant{l, link.to, range});
      }
    }
    return grants;
  };

  // ---- Overlay + sync (TDMA mode only).
  if (mode == MacMode::kTdmaOverlay) {
    sync = std::make_unique<SyncProtocol>(sim, config_.topology.graph,
                                          /*master=*/0, config_.sync,
                                          root.split());
    sync->start();
    overlays.resize(static_cast<std::size_t>(n));
    for (NodeId node = 0; node < n; ++node) {
      overlays[static_cast<std::size_t>(node)] =
          std::make_unique<TdmaOverlayNode>(
              sim, *macs[static_cast<std::size_t>(node)], *sync, node,
              config_.emulation);
    }
    // Distribute grants to transmitters.
    std::vector<std::vector<TdmaOverlayNode::TxGrant>> grants =
        grants_by_node(plan_);
    for (NodeId node = 0; node < n; ++node) {
      TdmaOverlayNode& overlay = *overlays[static_cast<std::size_t>(node)];
      overlay.set_grants(std::move(grants[static_cast<std::size_t>(node)]));
      if (auditor) {
        TdmaOverlayNode::Hooks hooks;
        hooks.on_best_effort_drop = [&](NodeId, LinkId,
                                        const MacPacket& p) {
          auditor->on_packet_dropped(
              p, audit::DropReason::kBestEffortOverflow);
        };
        hooks.on_block_skipped = [&](NodeId at, LinkId link) {
          auditor->on_block_skipped(at, link);
        };
        hooks.on_revoked_drop = [&](NodeId, LinkId, const MacPacket& p) {
          auditor->on_packet_dropped(p, audit::DropReason::kScheduleRevoked);
        };
        overlay.set_hooks(std::move(hooks));
      }
      overlay.start(duration + drain);
    }
  }

  // ---- Traffic sources.
  std::vector<std::unique_ptr<TrafficSource>> sources;
  for (const FlowSpec& spec : flows_) {
    FlowResult& fr = result.flows[flow_index[spec.id]];
    auto emit = [&, spec_id = spec.id, src = spec.src](MacPacket p) {
      const auto it = flow_index.find(spec_id);
      FlowResult& stats_entry = result.flows[it->second];
      if (p.created_at <= duration) stats_entry.stats.on_sent(p.bytes);
      p.from = src;
      if (auditor) auditor->on_packet_created(p);
      if (fault_rt && !fault_rt->node_up(src)) {
        // A crashed node generates nothing that can leave it.
        if (auditor) {
          auditor->on_packet_dropped(p, audit::DropReason::kNodeDown);
        }
        return;
      }
      if (mode == MacMode::kTdmaOverlay) {
        const LinkId link = live_plan->out_link(spec_id, src);
        if (link == kInvalidLink ||
            live_plan->schedule.all_grants(link).empty()) {
          // No capacity granted; counts as loss.
          if (auditor) {
            auditor->on_packet_dropped(
                p, typed_drop(audit::DropReason::kNoCapacity, spec_id));
          }
          return;
        }
        if (!overlays[static_cast<std::size_t>(src)]->enqueue(
                link, p,
                stats_entry.spec.service == ServiceClass::kGuaranteed)) {
          if (auditor) {
            auditor->on_packet_dropped(
                p, typed_drop(audit::DropReason::kScheduleRevoked, spec_id));
          }
        }
      } else {
        p.to = live_plan->next_hop(spec_id, src);
        mac_send(src, p, stats_entry.spec.service);
      }
    };
    (void)fr;
    // Random phase in one packet interval desynchronizes CBR sources.
    Rng src_rng = root.split();
    const SimTime phase = SimTime::nanoseconds(static_cast<std::int64_t>(
        src_rng.uniform(0.0,
                        static_cast<double>(spec.packet_interval.ns()))));
    switch (spec.shape) {
      case TrafficShape::kCbr:
        sources.push_back(std::make_unique<CbrSource>(
            sim, spec.id, emit, spec.packet_bytes, spec.packet_interval,
            phase));
        break;
      case TrafficShape::kPoisson:
        sources.push_back(std::make_unique<PoissonSource>(
            sim, spec.id, emit, spec.packet_bytes, spec.rate_bps(),
            src_rng.split()));
        break;
      case TrafficShape::kVbrVideo: {
        // Derive a profile whose long-run mean matches the reserved rate.
        VbrVideoSource::Profile profile;
        profile.mtu_bytes = spec.packet_bytes;
        profile.gop = spec.video_gop;
        profile.intra_scale = spec.video_intra_scale;
        const double mean_frame_bits =
            spec.rate_bps() * profile.frame_interval.to_seconds();
        const double gop_d = profile.gop;
        // rate = inter * (intra_scale + gop - 1) / gop → solve for inter.
        profile.mean_frame_bytes = static_cast<std::size_t>(
            mean_frame_bits / 8.0 * gop_d /
            (profile.intra_scale + gop_d - 1.0));
        sources.push_back(std::make_unique<VbrVideoSource>(
            sim, spec.id, emit, profile, src_rng.split()));
        break;
      }
    }
    sources.back()->start(SimTime::zero(), duration);
  }

  // ---- Fault injection (opt-in; constructed last so its RNG split is the
  // final draw off the root and fault-free runs stay bit-identical).
  if (config_.faults.enabled()) {
    faults::PlannerInputs inputs;
    inputs.comm_range = config_.comm_range;
    inputs.interference_range = config_.interference_range;
    inputs.phy = config_.phy;
    inputs.emulation = config_.emulation;  // guard already resolved
    inputs.routing = config_.routing;
    inputs.scheduler = config_.scheduler;
    inputs.ilp = config_.ilp;

    faults::Callbacks cb;
    if (mode == MacMode::kTdmaOverlay) {
      cb.node_up_changed = [&](NodeId node, bool up) {
        overlays[static_cast<std::size_t>(node)]->set_enabled(up);
      };
      cb.deploy = [&](const faults::Deployment& d) {
        std::vector<std::vector<TdmaOverlayNode::TxGrant>> grants =
            grants_by_node(*d.plan);
        for (NodeId node = 0; node < n; ++node) {
          overlays[static_cast<std::size_t>(node)]->stage_grants(
              d.activation_frame,
              std::move(grants[static_cast<std::size_t>(node)]), d.guard);
        }
        // The overlays adopt the staged grants at the top of the
        // activation frame's slot loop (scheduled earlier, so it fires
        // first at this timestamp); this event then repoints forwarding
        // and the audit monitors before the frame's first data slot.
        sim.schedule_at(d.activation_time, [&, plan = d.plan,
                        guard = d.guard,
                        frame = d.activation_frame] {
          live_plan = plan;
          trace::event(trace::EventType::kPlanActivated, sim.now(), -1,
                       frame);
          if (auditor) {
            auditor->install_schedule(plan->links, plan->conflicts,
                                      plan->schedule, config_.emulation.frame,
                                      guard);
          }
        });
      };
    }
    fault_rt = std::make_unique<faults::FaultRuntime>(
        sim, config_.faults, config_.topology, std::move(inputs), flows_,
        &plan_, mode == MacMode::kTdmaOverlay, channel, sync.get(),
        auditor.get(), root.split(), std::move(cb));
    fault_rt->start();
  }

  {
    trace::Span span(trace::SpanName::kSimRun);
    sim.run_until(duration + drain);
    span.set_virtual_range(SimTime::zero(), sim.now());
  }

  result.frames_transmitted = channel.frames_transmitted();
  result.receptions_corrupted = channel.receptions_corrupted();
  for (const auto& overlay : overlays) {
    result.overlay_busy_at_slot_start += overlay->busy_at_slot_start();
    result.overlay_deadline_requeues += overlay->deadline_requeues();
  }
  if (auditor) {
    // Everything the ledger has not seen delivered or dropped must still be
    // queued somewhere; count what the components actually hold.
    std::uint64_t residual = 0;
    for (const auto& overlay : overlays) residual += overlay->total_queued();
    for (const auto& mac : macs) residual += mac->pending_packets();
    for (const auto& mac : edca_macs) residual += mac->pending_packets();
    auditor->finalize(residual);
    result.audit = auditor->report();
  }
  if (fault_rt) result.faults = fault_rt->take_report(duration + drain);
  return result;
}

}  // namespace wimesh
