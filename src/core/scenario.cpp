#include "wimesh/core/scenario.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "wimesh/common/strings.h"
#include "wimesh/trace/trace.h"

namespace wimesh {
namespace {

std::string trim(std::string s) {
  const auto is_space = [](char c) {
    return c == ' ' || c == '\t' || c == '\r';
  };
  std::size_t b = 0;
  while (b < s.size() && is_space(s[b])) ++b;
  std::size_t e = s.size();
  while (e > b && is_space(s[e - 1])) --e;
  return s.substr(b, e - b);
}

std::vector<std::string> tokenize(const std::string& s) {
  std::istringstream in(s);
  std::vector<std::string> out;
  std::string tok;
  while (in >> tok) out.push_back(tok);
  return out;
}

Expected<double> to_number(const std::string& s, std::size_t line_no) {
  try {
    std::size_t used = 0;
    const double v = std::stod(s, &used);
    if (used != s.size()) throw std::invalid_argument(s);
    return v;
  } catch (const std::exception&) {
    return make_error(str_cat("line ", line_no, ": '", s,
                              "' is not a number"));
  }
}

// Applies one comma-separated "ilp =" knob list onto `opt` (repeated lines
// accumulate, later tokens win). Grammar documented in core/scenario.h.
Expected<bool> apply_ilp_options(IlpSchedulerOptions& opt,
                                 const std::string& value,
                                 std::size_t line_no) {
  for (const std::string& raw : split(value, ',')) {
    const std::string tok = trim(raw);
    if (tok.empty()) continue;
    const auto flag = [&](const char* name, bool* target) {
      if (tok == name) {
        *target = true;
        return true;
      }
      if (tok == std::string("no-") + name) {
        *target = false;
        return true;
      }
      return false;
    };
    if (flag("cuts", &opt.clique_cuts) ||
        flag("symmetry", &opt.symmetry_breaking) ||
        flag("warm", &opt.warm_start) || flag("tree", &opt.tree_fast_path)) {
      continue;
    }
    const auto eq = tok.find('=');
    if (eq != std::string::npos) {
      const std::string name = trim(tok.substr(0, eq));
      const auto num = to_number(trim(tok.substr(eq + 1)), line_no);
      if (!num) return make_error(num.error());
      if (name == "portfolio") {
        opt.portfolio = static_cast<int>(*num);
      } else if (name == "threads") {
        opt.threads = static_cast<int>(*num);
      } else if (name == "max_nodes") {
        opt.max_nodes = static_cast<long>(*num);
      } else if (name == "time_limit_s") {
        opt.time_limit_seconds = *num;
      } else {
        return make_error(str_cat("line ", line_no, ": unknown ilp knob '",
                                  name, "'"));
      }
      continue;
    }
    return make_error(str_cat("line ", line_no, ": unknown ilp token '", tok,
                              "' (expected [no-]cuts|[no-]symmetry|"
                              "[no-]warm|[no-]tree|portfolio=N|threads=N|"
                              "max_nodes=N|time_limit_s=X)"));
  }
  return true;
}

Expected<VoipCodec> parse_codec(const std::string& name, std::size_t line_no);

// Applies one comma-separated "admit =" knob list (repeated lines
// accumulate, later tokens win). Grammar documented in core/scenario.h.
Expected<bool> apply_admit_options(Scenario& sc, const std::string& value,
                                   std::size_t line_no) {
  sc.admit_enabled = true;
  for (const std::string& raw : split(value, ',')) {
    const std::string tok = trim(raw);
    if (tok.empty() || tok == "on") continue;
    if (tok == "degrade") {
      sc.admit_degrade = true;
      continue;
    }
    if (tok == "no-degrade") {
      sc.admit_degrade = false;
      continue;
    }
    if (tok == "check") {
      sc.admit_check = true;
      continue;
    }
    if (tok == "no-check") {
      sc.admit_check = false;
      continue;
    }
    const auto eq = tok.find('=');
    if (eq != std::string::npos) {
      const std::string name = trim(tok.substr(0, eq));
      const std::string val = trim(tok.substr(eq + 1));
      if (name == "codec") {
        auto codec = parse_codec(val, line_no);
        if (!codec) return make_error(codec.error());
        sc.admit_churn.codec = *codec;
        continue;
      }
      const auto num = to_number(val, line_no);
      if (!num) return make_error(num.error());
      if (name == "rate") {
        sc.admit_churn.arrival_rate_per_s = *num;
      } else if (name == "holding") {
        sc.admit_churn.mean_holding_s = *num;
      } else if (name == "horizon") {
        sc.admit_churn.horizon_s = *num;
      } else if (name == "events") {
        sc.admit_churn.max_events = static_cast<std::uint64_t>(*num);
      } else if (name == "max_delay_ms") {
        sc.admit_churn.max_delay =
            SimTime::milliseconds(static_cast<std::int64_t>(*num));
      } else if (name == "be_fraction") {
        sc.admit_churn.best_effort_fraction = *num;
      } else if (name == "seed") {
        sc.admit_churn.seed = static_cast<std::uint64_t>(*num);
      } else if (name == "compaction") {
        sc.admit_compaction = static_cast<int>(*num);
      } else {
        return make_error(str_cat("line ", line_no, ": unknown admit knob '",
                                  name, "'"));
      }
      continue;
    }
    return make_error(str_cat("line ", line_no, ": unknown admit token '",
                              tok,
                              "' (expected on|rate=X|holding=S|horizon=S|"
                              "events=N|codec=NAME|max_delay_ms=N|"
                              "be_fraction=X|seed=N|compaction=N|"
                              "[no-]degrade|[no-]check)"));
  }
  return true;
}

// Applies one comma-separated "radio =" knob list (repeated lines
// accumulate, later tokens win). Grammar documented in core/scenario.h.
// Any 'radio =' line switches the physical model on unless
// model=protocol explicitly keeps it off.
Expected<bool> apply_radio_options(radio::RadioConfig& rc,
                                   const std::string& value,
                                   std::size_t line_no) {
  rc.enabled = true;
  for (const std::string& raw : split(value, ',')) {
    const std::string tok = trim(raw);
    if (tok.empty() || tok == "on") continue;
    const auto eq = tok.find('=');
    if (eq == std::string::npos) {
      return make_error(str_cat("line ", line_no, ": unknown radio token '",
                                tok,
                                "' (expected on|model=...|shadowing=X|"
                                "fading=...|doppler=X|oscillators=N|"
                                "txpower=X|noise=X|capture=X|cs=X|cutoff=X|"
                                "exponent_los=X|exponent_obstructed=X|"
                                "floor_loss=X|freq=X|adapt=on/off|probe=N|"
                                "ewma=X|seed=N)"));
    }
    const std::string name = trim(tok.substr(0, eq));
    const std::string val = trim(tok.substr(eq + 1));
    if (name == "model") {
      if (val == "physical") {
        rc.enabled = true;
      } else if (val == "protocol") {
        rc.enabled = false;
      } else {
        return make_error(str_cat("line ", line_no, ": unknown radio model '",
                                  val, "' (physical|protocol)"));
      }
      continue;
    }
    if (name == "fading") {
      if (val == "jakes") {
        rc.fading.kind = radio::FadingConfig::Kind::kJakes;
      } else if (val == "none") {
        rc.fading.kind = radio::FadingConfig::Kind::kNone;
      } else {
        return make_error(str_cat("line ", line_no,
                                  ": unknown fading model '", val,
                                  "' (jakes|none)"));
      }
      continue;
    }
    if (name == "adapt") {
      if (val == "on") {
        rc.rate_adapt.enabled = true;
      } else if (val == "off") {
        rc.rate_adapt.enabled = false;
      } else {
        return make_error(str_cat("line ", line_no,
                                  ": radio adapt must be on|off"));
      }
      continue;
    }
    const auto num = to_number(val, line_no);
    if (!num) return make_error(num.error());
    if (name == "shadowing") {
      if (*num < 0) {
        return make_error(str_cat("line ", line_no,
                                  ": shadowing sigma must be >= 0 dB, got ",
                                  val));
      }
      rc.shadowing_sigma_db = *num;
    } else if (name == "doppler") {
      if (*num <= 0) {
        return make_error(str_cat("line ", line_no,
                                  ": doppler must be > 0 Hz, got ", val));
      }
      rc.fading.doppler_hz = *num;
    } else if (name == "oscillators") {
      if (*num < 1) {
        return make_error(str_cat("line ", line_no,
                                  ": oscillators must be >= 1, got ", val));
      }
      rc.fading.oscillators = static_cast<int>(*num);
    } else if (name == "txpower") {
      rc.tx_power_dbm = *num;
    } else if (name == "noise") {
      rc.noise_floor_dbm = *num;
    } else if (name == "capture") {
      rc.capture_threshold_db = *num;
    } else if (name == "cs") {
      rc.cs_threshold_dbm = *num;
    } else if (name == "cutoff") {
      rc.interference_cutoff_dbm = *num;
    } else if (name == "exponent_los") {
      rc.propagation.exponent_los = *num;
    } else if (name == "exponent_obstructed") {
      rc.propagation.exponent_obstructed = *num;
    } else if (name == "floor_loss") {
      if (*num < 0) {
        return make_error(str_cat("line ", line_no,
                                  ": floor_loss must be >= 0 dB, got ", val));
      }
      rc.propagation.floor_loss_db = *num;
    } else if (name == "freq") {
      if (*num <= 0) {
        return make_error(str_cat("line ", line_no,
                                  ": freq must be > 0 GHz, got ", val));
      }
      rc.propagation.frequency_ghz = *num;
    } else if (name == "probe") {
      if (*num < 2) {
        return make_error(str_cat("line ", line_no,
                                  ": probe interval must be >= 2, got ",
                                  val));
      }
      rc.rate_adapt.probe_interval = static_cast<int>(*num);
    } else if (name == "ewma") {
      if (*num <= 0 || *num > 1) {
        return make_error(str_cat("line ", line_no,
                                  ": ewma must be in (0, 1], got ", val));
      }
      rc.rate_adapt.ewma_alpha = *num;
    } else if (name == "seed") {
      rc.seed = static_cast<std::uint64_t>(*num);
    } else {
      return make_error(str_cat("line ", line_no, ": unknown radio knob '",
                                name, "'"));
    }
  }
  return true;
}

// Accumulates 'node <id> <x> <y>' / 'link <u> <v>' lines that follow a
// 'topology = custom' header; build_custom_topology validates and builds
// the graph once the whole file is read.
struct CustomTopologyState {
  bool active = false;
  std::size_t header_line = 0;
  struct NodeDecl {
    std::int64_t id = 0;
    Point pos;
    std::size_t line = 0;
  };
  struct LinkDecl {
    std::int64_t u = 0;
    std::int64_t v = 0;
    std::size_t line = 0;
  };
  std::vector<NodeDecl> nodes;
  std::vector<LinkDecl> links;
};

Expected<Topology> build_custom_topology(const CustomTopologyState& st) {
  if (st.nodes.empty()) {
    return make_error(str_cat("line ", st.header_line,
                              ": custom topology declares no nodes"));
  }
  const auto n = static_cast<std::int64_t>(st.nodes.size());
  if (n > std::numeric_limits<NodeId>::max()) {
    return make_error(str_cat("line ", st.header_line, ": custom topology of ",
                              n, " nodes exceeds the NodeId range"));
  }
  Topology t;
  t.graph.resize(static_cast<NodeId>(n));
  t.positions.resize(static_cast<std::size_t>(n));
  std::vector<bool> declared(static_cast<std::size_t>(n), false);
  for (const auto& node : st.nodes) {
    if (node.id < 0 || node.id >= n) {
      return make_error(str_cat("line ", node.line, ": node id ", node.id,
                                " out of range (ids must be dense 0..",
                                n - 1, ")"));
    }
    if (declared[static_cast<std::size_t>(node.id)]) {
      return make_error(str_cat("line ", node.line, ": duplicate node id ",
                                node.id));
    }
    declared[static_cast<std::size_t>(node.id)] = true;
    t.positions[static_cast<std::size_t>(node.id)] = node.pos;
  }
  for (const auto& link : st.links) {
    if (link.u < 0 || link.u >= n || link.v < 0 || link.v >= n) {
      return make_error(str_cat("line ", link.line, ": link ", link.u, " ",
                                link.v, " references an undeclared node"));
    }
    if (link.u == link.v) {
      return make_error(str_cat("line ", link.line, ": link ", link.u, " ",
                                link.v, " is a self-loop"));
    }
    const auto u = static_cast<NodeId>(link.u);
    const auto v = static_cast<NodeId>(link.v);
    // The assertion inside Graph::add_edge would make a malformed input
    // file a crash; here a parallel edge is an ordinary scenario error
    // that names the offending line.
    if (t.graph.has_edge(u, v)) {
      return make_error(str_cat("line ", link.line, ": duplicate link ",
                                link.u, " ", link.v,
                                " (parallel edges are not allowed)"));
    }
    t.graph.add_edge(u, v);
  }
  return t;
}

Expected<Topology> parse_topology(const std::vector<std::string>& args,
                                  std::size_t line_no) {
  const auto need = [&](std::size_t n) {
    return args.size() == n;
  };
  const auto num = [&](std::size_t i) { return to_number(args[i], line_no); };
  if (args.empty()) return make_error(str_cat("line ", line_no,
                                              ": empty topology"));
  const std::string& kind = args[0];
  if (kind == "chain" && need(3)) {
    const auto n = num(1);
    const auto s = num(2);
    if (!n || !s) return make_error(n ? s.error() : n.error());
    return make_chain(static_cast<NodeId>(*n), *s);
  }
  if (kind == "grid" && need(4)) {
    const auto r = num(1);
    const auto c = num(2);
    const auto s = num(3);
    if (!r || !c || !s) return make_error("bad grid arguments");
    auto topo = try_make_grid(static_cast<std::int64_t>(*r),
                              static_cast<std::int64_t>(*c), *s);
    if (!topo) return make_error(str_cat("line ", line_no, ": ",
                                         topo.error()));
    return std::move(*topo);
  }
  if (kind == "ring" && need(3)) {
    const auto n = num(1);
    const auto r = num(2);
    if (!n || !r) return make_error("bad ring arguments");
    return make_ring(static_cast<NodeId>(*n), *r);
  }
  if (kind == "random" && need(5)) {
    const auto n = num(1);
    const auto side = num(2);
    const auto range = num(3);
    const auto seed = num(4);
    if (!n || !side || !range || !seed) {
      return make_error("bad random arguments");
    }
    Rng rng(static_cast<std::uint64_t>(*seed));
    return make_random_geometric(static_cast<NodeId>(*n), *side, *range, rng);
  }
  if (kind == "tree" && need(4)) {
    const auto a = num(1);
    const auto d = num(2);
    const auto s = num(3);
    if (!a || !d || !s) return make_error("bad tree arguments");
    return make_tree(static_cast<NodeId>(*a), static_cast<NodeId>(*d), *s);
  }
  return make_error(str_cat("line ", line_no, ": unknown topology '", kind,
                            "' (or wrong argument count)"));
}

Expected<PhyMode> parse_phy(const std::string& value, std::size_t line_no) {
  if (value.rfind("ofdm", 0) == 0) {
    const auto rate = to_number(value.substr(4), line_no);
    if (!rate) return make_error(rate.error());
    for (int r : {6, 9, 12, 18, 24, 36, 48, 54}) {
      if (r == static_cast<int>(*rate)) return PhyMode::ofdm_802_11a(r);
    }
  }
  if (value.rfind("dsss", 0) == 0) {
    const auto rate = to_number(value.substr(4), line_no);
    if (!rate) return make_error(rate.error());
    for (int r : {1, 2, 5, 11}) {
      if (r == static_cast<int>(*rate)) return PhyMode::dsss_802_11b(r);
    }
  }
  return make_error(str_cat("line ", line_no, ": unknown phy '", value, "'"));
}

Expected<VoipCodec> parse_codec(const std::string& name,
                                std::size_t line_no) {
  if (name == "g711") return VoipCodec::g711();
  if (name == "g729") return VoipCodec::g729();
  if (name == "g723") return VoipCodec::g723();
  return make_error(str_cat("line ", line_no, ": unknown codec '", name,
                            "' (g711|g729|g723)"));
}

}  // namespace

Expected<Scenario> parse_scenario(const std::string& text) {
  Scenario sc;
  bool have_topology = false;
  CustomTopologyState custom;
  // 'floor <node> <level>' lines; validated against the topology (which a
  // custom declaration only finishes after the whole file) post-loop.
  struct FloorDecl {
    std::int64_t node = 0;
    int level = 0;
    std::size_t line = 0;
  };
  std::vector<FloorDecl> floor_decls;
  std::size_t line_no = 0;

  for (const std::string& raw : split(text, '\n')) {
    ++line_no;
    std::string line = raw;
    if (const auto hash = line.find('#'); hash != std::string::npos) {
      line.resize(hash);
    }
    line = trim(line);
    if (line.empty()) continue;

    // Flow declarations: "<kind> <args...>" without '='.
    const auto eq = line.find('=');
    if (eq == std::string::npos) {
      const auto tokens = tokenize(line);
      const std::string& kind = tokens[0];
      const auto num = [&](std::size_t i) -> Expected<double> {
        if (i >= tokens.size()) {
          return make_error(str_cat("line ", line_no, ": missing argument"));
        }
        return to_number(tokens[i], line_no);
      };
      if (kind == "node" || kind == "link") {
        if (!custom.active) {
          return make_error(str_cat("line ", line_no, ": '", kind,
                                    "' lines require 'topology = custom'"));
        }
        if (kind == "node" && tokens.size() == 4) {
          const auto id = num(1), x = num(2), y = num(3);
          if (!id || !x || !y) return make_error("bad node line");
          custom.nodes.push_back({static_cast<std::int64_t>(*id),
                                  Point{*x, *y}, line_no});
          continue;
        }
        if (kind == "link" && tokens.size() == 3) {
          const auto u = num(1), v = num(2);
          if (!u || !v) return make_error("bad link line");
          custom.links.push_back({static_cast<std::int64_t>(*u),
                                  static_cast<std::int64_t>(*v), line_no});
          continue;
        }
        return make_error(str_cat("line ", line_no, ": bad ", kind,
                                  " line (expected 'node <id> <x> <y>' / "
                                  "'link <u> <v>')"));
      }
      if (kind == "wall") {
        if (tokens.size() != 5 && tokens.size() != 6) {
          return make_error(str_cat("line ", line_no,
                                    ": bad wall line (expected 'wall <x1> "
                                    "<y1> <x2> <y2> [loss_db]')"));
        }
        const auto x1 = num(1), y1 = num(2), x2 = num(3), y2 = num(4);
        if (!x1 || !y1 || !x2 || !y2) return make_error("bad wall line");
        radio::WallSegment wall;
        wall.a = Point{*x1, *y1};
        wall.b = Point{*x2, *y2};
        if (tokens.size() == 6) {
          const auto loss = num(5);
          if (!loss) return make_error(loss.error());
          wall.loss_db = *loss;
        }
        sc.config.radio.propagation.walls.push_back(wall);
        continue;
      }
      if (kind == "floor") {
        if (tokens.size() != 3) {
          return make_error(str_cat("line ", line_no,
                                    ": bad floor line (expected 'floor "
                                    "<node> <level>')"));
        }
        const auto node = num(1), level = num(2);
        if (!node || !level) return make_error("bad floor line");
        floor_decls.push_back({static_cast<std::int64_t>(*node),
                               static_cast<int>(*level), line_no});
        continue;
      }
      if (kind == "voip" && tokens.size() == 6) {
        const auto id = num(1), a = num(2), b = num(3), delay = num(5);
        const auto codec = parse_codec(tokens[4], line_no);
        if (!id || !a || !b || !delay) return make_error("bad voip line");
        if (!codec) return make_error(codec.error());
        const SimTime bound =
            SimTime::milliseconds(static_cast<std::int64_t>(*delay));
        sc.flows.push_back(FlowSpec::voip(static_cast<int>(*id),
                                          static_cast<NodeId>(*a),
                                          static_cast<NodeId>(*b), *codec,
                                          bound));
        sc.flows.push_back(FlowSpec::voip(static_cast<int>(*id) + 1,
                                          static_cast<NodeId>(*b),
                                          static_cast<NodeId>(*a), *codec,
                                          bound));
        continue;
      }
      if (kind == "video" && tokens.size() == 5) {
        const auto id = num(1), src = num(2), dst = num(3), rate = num(4);
        if (!id || !src || !dst || !rate) return make_error("bad video line");
        sc.flows.push_back(FlowSpec::video(static_cast<int>(*id),
                                           static_cast<NodeId>(*src),
                                           static_cast<NodeId>(*dst), *rate));
        continue;
      }
      if (kind == "bulk" && tokens.size() == 6) {
        const auto id = num(1), src = num(2), dst = num(3), bytes = num(4),
                   rate = num(5);
        if (!id || !src || !dst || !bytes || !rate) {
          return make_error("bad bulk line");
        }
        sc.flows.push_back(FlowSpec::best_effort(
            static_cast<int>(*id), static_cast<NodeId>(*src),
            static_cast<NodeId>(*dst), static_cast<std::size_t>(*bytes),
            *rate));
        continue;
      }
      return make_error(str_cat("line ", line_no, ": unrecognized line '",
                                line, "'"));
    }

    const std::string key = trim(line.substr(0, eq));
    const std::string value = trim(line.substr(eq + 1));
    const auto numeric = [&]() { return to_number(value, line_no); };

    if (key == "topology") {
      if (value == "custom") {
        // Node/link declarations follow on their own lines; the topology
        // is assembled after the whole file is read.
        custom.active = true;
        custom.header_line = line_no;
        have_topology = true;
        continue;
      }
      auto topo = parse_topology(tokenize(value), line_no);
      if (!topo) return make_error(topo.error());
      sc.config.topology = std::move(*topo);
      have_topology = true;
    } else if (key == "zones") {
      const auto v = numeric();
      if (!v) return make_error(v.error());
      if (*v < 0) {
        return make_error(str_cat("line ", line_no,
                                  ": zones must be >= 0 (0 disables "
                                  "zoning)"));
      }
      sc.config.zones = static_cast<int>(*v);
    } else if (key == "event_queue") {
      if (value == "calendar") {
        sc.config.event_queue = EventQueueKind::kCalendarQueue;
      } else if (value == "heap") {
        sc.config.event_queue = EventQueueKind::kBinaryHeap;
      } else {
        return make_error(str_cat("line ", line_no,
                                  ": event_queue must be calendar|heap"));
      }
    } else if (key == "comm_range") {
      const auto v = numeric();
      if (!v) return make_error(v.error());
      sc.config.comm_range = *v;
    } else if (key == "interference_range") {
      const auto v = numeric();
      if (!v) return make_error(v.error());
      sc.config.interference_range = *v;
    } else if (key == "phy") {
      auto phy = parse_phy(value, line_no);
      if (!phy) return make_error(phy.error());
      sc.config.phy = std::move(*phy);
    } else if (key == "frame_ms") {
      const auto v = numeric();
      if (!v) return make_error(v.error());
      sc.config.emulation.frame.frame_duration =
          SimTime::milliseconds(static_cast<std::int64_t>(*v));
    } else if (key == "control_slots") {
      const auto v = numeric();
      if (!v) return make_error(v.error());
      sc.config.emulation.frame.control_slots = static_cast<int>(*v);
    } else if (key == "data_slots") {
      const auto v = numeric();
      if (!v) return make_error(v.error());
      sc.config.emulation.frame.data_slots = static_cast<int>(*v);
    } else if (key == "guard_us") {
      if (value == "auto") {
        sc.config.auto_guard = true;
      } else {
        const auto v = numeric();
        if (!v) return make_error(v.error());
        sc.config.auto_guard = false;
        sc.config.emulation.guard_time =
            SimTime::microseconds(static_cast<std::int64_t>(*v));
      }
    } else if (key == "scheduler") {
      if (value == "ilp-delay") {
        sc.config.scheduler = SchedulerKind::kIlpDelayAware;
      } else if (value == "ilp-nodelay") {
        sc.config.scheduler = SchedulerKind::kIlpDelayUnaware;
      } else if (value == "greedy") {
        sc.config.scheduler = SchedulerKind::kGreedy;
      } else if (value == "round-robin") {
        sc.config.scheduler = SchedulerKind::kRoundRobin;
      } else {
        return make_error(str_cat("line ", line_no, ": unknown scheduler '",
                                  value, "'"));
      }
    } else if (key == "ilp") {
      auto applied = apply_ilp_options(sc.config.ilp, value, line_no);
      if (!applied) return make_error(applied.error());
    } else if (key == "radio") {
      auto applied = apply_radio_options(sc.config.radio, value, line_no);
      if (!applied) return make_error(applied.error());
    } else if (key == "admit") {
      auto applied = apply_admit_options(sc, value, line_no);
      if (!applied) return make_error(applied.error());
    } else if (key == "routing") {
      if (value == "hop") {
        sc.config.routing = RoutingPolicy::kHopCount;
      } else if (value == "load-aware") {
        sc.config.routing = RoutingPolicy::kLoadAware;
      } else {
        return make_error(str_cat("line ", line_no, ": unknown routing '",
                                  value, "'"));
      }
    } else if (key == "mac") {
      if (value == "tdma") {
        sc.mac = MacMode::kTdmaOverlay;
      } else if (value == "dcf") {
        sc.mac = MacMode::kDcf;
      } else if (value == "edca") {
        sc.mac = MacMode::kEdca;
      } else {
        return make_error(str_cat("line ", line_no, ": unknown mac '", value,
                                  "'"));
      }
    } else if (key == "duration_s") {
      const auto v = numeric();
      if (!v) return make_error(v.error());
      sc.duration = SimTime::from_seconds(*v);
    } else if (key == "seed") {
      const auto v = numeric();
      if (!v) return make_error(v.error());
      sc.config.seed = static_cast<std::uint64_t>(*v);
    } else if (key == "packet_error_rate") {
      const auto v = numeric();
      if (!v) return make_error(v.error());
      sc.config.packet_error_rate = *v;
    } else if (key == "rts_cts") {
      if (value == "on") {
        sc.config.dcf_rts_cts = true;
      } else if (value == "off") {
        sc.config.dcf_rts_cts = false;
      } else {
        return make_error(str_cat("line ", line_no,
                                  ": rts_cts must be on|off"));
      }
    } else if (key == "fault") {
      auto plan = faults::parse_fault_plan(value);
      if (!plan) {
        return make_error(str_cat("line ", line_no, ": ", plan.error()));
      }
      // Multiple fault= lines accumulate into one plan.
      for (const faults::FaultEvent& e : plan->events) {
        sc.config.faults.events.push_back(e);
      }
      sc.config.faults.detection_delay = plan->detection_delay;
      std::stable_sort(sc.config.faults.events.begin(),
                       sc.config.faults.events.end(),
                       [](const faults::FaultEvent& a,
                          const faults::FaultEvent& b) { return a.at < b.at; });
    } else if (key == "audit") {
      if (value == "on") {
        sc.config.audit = true;
        sc.config.audit_fail_fast = false;
      } else if (value == "fail-fast") {
        sc.config.audit = true;
        sc.config.audit_fail_fast = true;
      } else if (value == "off") {
        sc.config.audit = false;
        sc.config.audit_fail_fast = false;
      } else {
        return make_error(str_cat("line ", line_no,
                                  ": audit must be on|off|fail-fast"));
      }
    } else if (key == "trace") {
      std::string trace_error;
      sc.config.trace_categories = trace::parse_categories(value, &trace_error);
      if (!trace_error.empty()) {
        return make_error(str_cat("line ", line_no, ": ", trace_error));
      }
    } else {
      return make_error(str_cat("line ", line_no, ": unknown key '", key,
                                "'"));
    }
  }

  if (custom.active) {
    auto topo = build_custom_topology(custom);
    if (!topo) return make_error(topo.error());
    sc.config.topology = std::move(*topo);
  }
  if (!have_topology) return make_error("scenario is missing 'topology'");

  // Physical-layer validation: surface misconfiguration as named scenario
  // errors instead of the asserts the typed factories would otherwise hit.
  {
    auto ranges = RadioModel::try_make(sc.config.comm_range,
                                       sc.config.interference_range);
    if (!ranges) return make_error(str_cat("radio ranges: ", ranges.error()));
  }
  if (sc.config.radio.enabled ||
      !sc.config.radio.propagation.walls.empty()) {
    auto prop = radio::Propagation::try_make(sc.config.radio.propagation);
    if (!prop) return make_error(str_cat("radio: ", prop.error()));
  }
  if (!floor_decls.empty()) {
    const NodeId n = sc.config.topology.node_count();
    sc.config.radio.floors.assign(static_cast<std::size_t>(n), 0);
    for (const auto& decl : floor_decls) {
      if (decl.node < 0 || decl.node >= n) {
        return make_error(str_cat("line ", decl.line, ": floor declares node ",
                                  decl.node, " but the topology has ", n,
                                  " nodes"));
      }
      sc.config.radio.floors[static_cast<std::size_t>(decl.node)] =
          decl.level;
    }
  }
  // Churn replays synthesize their own arrivals, so a flow-less scenario
  // is complete once 'admit =' appears.
  if (sc.flows.empty() && !sc.admit_enabled) {
    return make_error("scenario declares no traffic");
  }
  return sc;
}

std::string format_report(const Scenario& scenario,
                          const SimulationResult& result) {
  std::string out;
  out += str_cat("nodes: ", scenario.config.topology.node_count(),
                 "  flows: ", result.flows.size(),
                 "  interval: ", result.measured_interval.to_string(), "\n");
  out += str_cat("frames on air: ", result.frames_transmitted,
                 "  corrupted receptions: ", result.receptions_corrupted,
                 "  mac drops: ", result.mac_drops, "\n");
  if (result.audit.enabled) {
    out += result.audit.summary() + "\n";
    for (const audit::ViolationRecord& r : result.audit.records) {
      out += str_cat("  [", audit::violation_kind_name(r.kind), " @ ",
                     r.time.to_string(), "] ", r.detail, "\n");
    }
  }
  if (result.faults.enabled) {
    out += result.faults.summary() + "\n";
    for (const faults::FlowOutageRecord& o : result.faults.outages) {
      out += str_cat("  flow ", o.flow_id, ": interrupted at ",
                     o.interrupted_at.to_string(),
                     o.shed ? ", shed"
                            : (o.restored()
                                   ? str_cat(", restored after ",
                                             o.outage.to_string())
                                   : str_cat(", not restored (",
                                             o.outage.to_string(),
                                             " outage)")),
                     o.partitioned ? " [partitioned]" : "", "\n");
    }
  }
  out += "flow  class       loss     mean_ms  p99_ms    tput_kbps\n";
  for (const FlowResult& f : result.flows) {
    const char* cls =
        f.spec.shape == TrafficShape::kVbrVideo
            ? "video"
            : (f.spec.service == ServiceClass::kGuaranteed ? "voip"
                                                           : "best-effort");
    const bool has = !f.stats.delays_ms().empty();
    out += str_cat(f.spec.id, "  ", cls, "  ",
                   fmt_double(f.stats.loss_rate(), 4), "  ",
                   fmt_double(has ? f.stats.delays_ms().mean() : 0.0, 2),
                   "  ",
                   fmt_double(has ? f.stats.delays_ms().quantile(0.99) : 0.0,
                              2),
                   "  ",
                   fmt_double(f.stats.throughput_bps(
                                  result.measured_interval) /
                                  1000.0,
                              1),
                   "\n");
  }
  return out;
}

}  // namespace wimesh
