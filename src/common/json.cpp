#include "wimesh/common/json.h"

#include <cstddef>
#include <cstdint>
#include <cstdio>

namespace wimesh {

namespace {

// Length of the valid UTF-8 sequence starting at s[i], or 0 if the bytes
// there are not well-formed UTF-8 (overlong forms, surrogates and values
// beyond U+10FFFF are rejected like any other invalid sequence).
std::size_t utf8_sequence_length(const std::string& s, std::size_t i) {
  const auto byte = [&](std::size_t k) {
    return static_cast<unsigned char>(s[k]);
  };
  const unsigned char b0 = byte(i);
  std::size_t len = 0;
  if ((b0 & 0xe0u) == 0xc0u) {
    len = 2;
  } else if ((b0 & 0xf0u) == 0xe0u) {
    len = 3;
  } else if ((b0 & 0xf8u) == 0xf0u) {
    len = 4;
  } else {
    return 0;  // lone continuation byte or invalid lead
  }
  if (i + len > s.size()) return 0;
  for (std::size_t k = 1; k < len; ++k) {
    if ((byte(i + k) & 0xc0u) != 0x80u) return 0;
  }
  std::uint32_t cp = b0 & (0x7fu >> len);
  for (std::size_t k = 1; k < len; ++k) {
    cp = (cp << 6) | (byte(i + k) & 0x3fu);
  }
  if (len == 2 && cp < 0x80u) return 0;
  if (len == 3 && cp < 0x800u) return 0;
  if (len == 4 && cp < 0x10000u) return 0;
  if (cp >= 0xd800u && cp <= 0xdfffu) return 0;
  if (cp > 0x10ffffu) return 0;
  return len;
}

}  // namespace

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size();) {
    const auto c = static_cast<unsigned char>(s[i]);
    switch (c) {
      case '"':
        out += "\\\"";
        ++i;
        continue;
      case '\\':
        out += "\\\\";
        ++i;
        continue;
      case '\b':
        out += "\\b";
        ++i;
        continue;
      case '\f':
        out += "\\f";
        ++i;
        continue;
      case '\n':
        out += "\\n";
        ++i;
        continue;
      case '\r':
        out += "\\r";
        ++i;
        continue;
      case '\t':
        out += "\\t";
        ++i;
        continue;
      default:
        break;
    }
    if (c < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x", c);
      out += buf;
      ++i;
      continue;
    }
    if (c < 0x80) {
      out += static_cast<char>(c);
      ++i;
      continue;
    }
    const std::size_t len = utf8_sequence_length(s, i);
    if (len == 0) {
      out += "\xef\xbf\xbd";  // U+FFFD replacement character
      ++i;
      continue;
    }
    out.append(s, i, len);
    i += len;
  }
  return out;
}

}  // namespace wimesh
