#include "wimesh/common/strings.h"

#include <iomanip>

namespace wimesh {

std::string fmt_double(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string join(const std::vector<std::string>& items,
                 const std::string& sep) {
  std::string out;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i != 0) out += sep;
    out += items[i];
  }
  return out;
}

std::vector<std::string> split(const std::string& s, char delim) {
  std::vector<std::string> out;
  std::string field;
  for (char c : s) {
    if (c == delim) {
      out.push_back(field);
      field.clear();
    } else {
      field += c;
    }
  }
  out.push_back(field);
  return out;
}

}  // namespace wimesh
