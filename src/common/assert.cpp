#include "wimesh/common/assert.h"

#include <cstdio>
#include <cstdlib>

namespace wimesh::detail {

[[noreturn]] void assert_fail(std::string_view cond, std::string_view file,
                              int line, std::string_view msg) {
  std::fprintf(stderr, "wimesh assertion failed: %.*s (%.*s:%d)%s%.*s\n",
               static_cast<int>(cond.size()), cond.data(),
               static_cast<int>(file.size()), file.data(), line,
               msg.empty() ? "" : " — ", static_cast<int>(msg.size()),
               msg.data());
  std::abort();
}

}  // namespace wimesh::detail
