#include "wimesh/common/time.h"

#include "wimesh/common/strings.h"

namespace wimesh {

std::string SimTime::to_string() const {
  const std::int64_t abs_ns = ns_ < 0 ? -ns_ : ns_;
  if (abs_ns >= 1'000'000'000) return fmt_double(to_seconds(), 3) + "s";
  if (abs_ns >= 1'000'000) return fmt_double(to_ms(), 3) + "ms";
  if (abs_ns >= 1'000) return fmt_double(to_us(), 3) + "us";
  return str_cat(ns_, "ns");
}

}  // namespace wimesh
