#include "wimesh/common/rng.h"

#include <cmath>

namespace wimesh {
namespace {

// SplitMix64: seeds the xoshiro state and derives child-stream seeds.
std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

std::uint64_t Rng::derive_stream(std::uint64_t base_seed,
                                 std::uint64_t stream_index) {
  // Two SplitMix64 rounds over a mix of both inputs; a plain xor would
  // alias (base, index) pairs along the diagonal.
  std::uint64_t x = base_seed;
  const std::uint64_t a = splitmix64(x);
  x = stream_index ^ 0x9e3779b97f4a7c15ULL;
  const std::uint64_t b = splitmix64(x);
  std::uint64_t mixed = a ^ (b + 0x2545f4914f6cdd1dULL + (a << 6) + (a >> 2));
  return splitmix64(mixed);
}

void Rng::reseed(std::uint64_t seed) {
  seed_ = seed;
  split_count_ = 0;
  have_spare_normal_ = false;
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
}

Rng Rng::split() {
  // Children are seeded from (parent seed, split index) through SplitMix64
  // so they are independent of the parent's draw position.
  std::uint64_t sm = seed_ ^ 0xa5a5a5a5a5a5a5a5ULL;
  std::uint64_t child_seed = splitmix64(sm) + ++split_count_;
  return Rng{splitmix64(child_seed)};
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t n) {
  WIMESH_ASSERT(n > 0);
  // Lemire-style rejection: accept only draws in the largest multiple of n.
  const std::uint64_t threshold = -n % n;
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % n;
  }
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  WIMESH_ASSERT(lo <= hi);
  const std::uint64_t span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next_u64());  // full range
  return lo + static_cast<std::int64_t>(next_below(span));
}

double Rng::uniform() {
  // 53 random bits → [0, 1) with full double precision.
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  WIMESH_ASSERT(lo <= hi);
  return lo + (hi - lo) * uniform();
}

double Rng::exponential(double mean) {
  WIMESH_ASSERT(mean > 0);
  // 1 - uniform() is in (0, 1], so the log is finite.
  return -mean * std::log(1.0 - uniform());
}

double Rng::normal(double mean, double stddev) {
  if (have_spare_normal_) {
    have_spare_normal_ = false;
    return mean + stddev * spare_normal_;
  }
  double u, v, s;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  spare_normal_ = v * factor;
  have_spare_normal_ = true;
  return mean + stddev * u * factor;
}

bool Rng::chance(double p) { return uniform() < p; }

}  // namespace wimesh
