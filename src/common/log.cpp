#include "wimesh/common/log.h"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace wimesh {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarn};

// Serializes whole lines so concurrent batch workers cannot interleave
// their output mid-line.
std::mutex g_write_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }
LogLevel log_level() { return g_level.load(); }

void log(LogLevel level, const std::string& component,
         const std::string& message) {
  if (level < g_level.load()) return;
  std::lock_guard<std::mutex> lock(g_write_mutex);
  std::fprintf(stderr, "[%s] %s: %s\n", level_name(level), component.c_str(),
               message.c_str());
}

}  // namespace wimesh
