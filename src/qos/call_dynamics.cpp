#include "wimesh/qos/call_dynamics.h"

#include <algorithm>
#include <functional>
#include <map>

#include "wimesh/des/simulator.h"
#include "wimesh/trace/trace.h"

namespace wimesh {

CallDynamicsResult simulate_call_dynamics(const Topology& topology,
                                          const RadioModel& radio,
                                          const EmulationParams& params,
                                          const PhyMode& phy,
                                          const CallDynamicsConfig& config) {
  WIMESH_ASSERT(!config.endpoints.empty());
  WIMESH_ASSERT(config.arrival_rate_per_s > 0.0);
  WIMESH_ASSERT(config.mean_holding_s > 0.0);

  QosPlanner planner(topology, radio, params, phy);
  Simulator sim;
  Rng rng(config.seed);

  CallDynamicsResult result;
  // Active calls as flow specs (two per call) keyed by call id.
  std::map<int, std::pair<FlowSpec, FlowSpec>> active;
  int next_call_id = 0;

  // Carried-load time integral.
  SimTime last_change = SimTime::zero();
  double carried_integral_s = 0.0;
  const auto account = [&] {
    carried_integral_s +=
        static_cast<double>(active.size()) *
        (sim.now() - last_change).to_seconds();
    last_change = sim.now();
    result.peak_carried_calls =
        std::max(result.peak_carried_calls, static_cast<int>(active.size()));
  };

  const auto flows_with = [&](const std::pair<FlowSpec, FlowSpec>* candidate) {
    std::vector<FlowSpec> flows;
    for (const auto& [id, pair] : active) {
      flows.push_back(pair.first);
      flows.push_back(pair.second);
    }
    if (candidate != nullptr) {
      flows.push_back(candidate->first);
      flows.push_back(candidate->second);
    }
    return flows;
  };

  std::function<void()> schedule_next_arrival = [&] {
    const SimTime gap = SimTime::from_seconds(
        rng.exponential(1.0 / config.arrival_rate_per_s));
    if (sim.now() + gap >= config.horizon) return;
    sim.schedule_in(gap, [&] {
      ++result.offered;
      const auto& endpoints = config.endpoints[rng.next_below(
          static_cast<std::uint64_t>(config.endpoints.size()))];
      const int call_id = next_call_id;
      next_call_id += 2;
      std::pair<FlowSpec, FlowSpec> candidate{
          FlowSpec::voip(call_id, endpoints.first, endpoints.second,
                         config.codec, config.max_delay),
          FlowSpec::voip(call_id + 1, endpoints.second, endpoints.first,
                         config.codec, config.max_delay)};
      ++result.plans_attempted;
      const std::int64_t wall0 = trace::monotonic_ns();
      const auto plan =
          planner.plan(flows_with(&candidate), config.scheduler, config.ilp,
                       PlanObjective::kFeasibility);
      result.decision_latency_ns.add(
          static_cast<double>(trace::monotonic_ns() - wall0));
      if (plan.has_value()) {
        account();
        ++result.admitted;
        active.emplace(call_id, std::move(candidate));
        const SimTime holding =
            SimTime::from_seconds(rng.exponential(config.mean_holding_s));
        sim.schedule_in(holding, [&, call_id] {
          account();
          active.erase(call_id);
        });
      } else {
        ++result.blocked;
      }
      schedule_next_arrival();
    });
  };
  schedule_next_arrival();

  sim.run_until(config.horizon);
  account();
  const double horizon_s = config.horizon.to_seconds();
  result.mean_carried_calls =
      horizon_s > 0.0 ? carried_integral_s / horizon_s : 0.0;
  return result;
}

}  // namespace wimesh
