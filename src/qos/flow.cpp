#include "wimesh/qos/flow.h"

namespace wimesh {

FlowSpec FlowSpec::voip(int id, NodeId src, NodeId dst, const VoipCodec& codec,
                        SimTime max_delay) {
  FlowSpec f;
  f.id = id;
  f.src = src;
  f.dst = dst;
  f.service = ServiceClass::kGuaranteed;
  f.packet_bytes = codec.packet_bytes();
  f.packet_interval = codec.packet_interval;
  f.max_delay = max_delay;
  return f;
}

FlowSpec FlowSpec::best_effort(int id, NodeId src, NodeId dst,
                               std::size_t packet_bytes, double rate_bps) {
  FlowSpec f;
  f.id = id;
  f.src = src;
  f.dst = dst;
  f.service = ServiceClass::kBestEffort;
  f.shape = TrafficShape::kPoisson;
  f.packet_bytes = packet_bytes;
  f.packet_interval = SimTime::from_seconds(
      static_cast<double>(packet_bytes) * 8.0 / rate_bps);
  return f;
}

FlowSpec FlowSpec::video(int id, NodeId src, NodeId dst, double mean_rate_bps,
                         std::size_t mtu, SimTime max_delay) {
  FlowSpec f;
  f.id = id;
  f.src = src;
  f.dst = dst;
  f.service = ServiceClass::kGuaranteed;
  f.shape = TrafficShape::kVbrVideo;
  f.packet_bytes = mtu;
  f.packet_interval = SimTime::from_seconds(
      static_cast<double>(mtu) * 8.0 / mean_rate_bps);
  f.max_delay = max_delay;
  return f;
}

}  // namespace wimesh
