#include "wimesh/qos/planner.h"

#include <algorithm>
#include <queue>

#include "wimesh/common/strings.h"
#include "wimesh/graph/shortest_path.h"
#include "wimesh/trace/trace.h"
#include "wimesh/sched/conflict_graph.h"
#include "wimesh/sched/schedule_cache.h"

namespace wimesh {

NodeId MeshPlan::next_hop(int flow_id, NodeId at) const {
  const FlowPlan* f = find_flow(flow_id);
  if (f == nullptr) return kInvalidNode;
  for (std::size_t i = 0; i + 1 < f->node_path.size(); ++i) {
    if (f->node_path[i] == at) return f->node_path[i + 1];
  }
  return kInvalidNode;
}

LinkId MeshPlan::out_link(int flow_id, NodeId at) const {
  const FlowPlan* f = find_flow(flow_id);
  if (f == nullptr) return kInvalidLink;
  for (std::size_t i = 0; i + 1 < f->node_path.size(); ++i) {
    if (f->node_path[i] == at) return f->links[i];
  }
  return kInvalidLink;
}

const FlowPlan* MeshPlan::find_flow(int flow_id) const {
  for (const FlowPlan& f : guaranteed) {
    if (f.spec.id == flow_id) return &f;
  }
  for (const FlowPlan& f : best_effort) {
    if (f.spec.id == flow_id) return &f;
  }
  return nullptr;
}

QosPlanner::QosPlanner(const Topology& topology, const RadioModel& radio,
                       EmulationParams params, PhyMode phy,
                       RoutingPolicy routing,
                       const radio::RadioEnvironment* radio_env)
    : topology_(topology),
      radio_(radio),
      params_(params),
      phy_(std::move(phy)),
      routing_(routing),
      radio_env_(radio_env) {
  // A disconnected topology is admissible: after node/link failures the
  // fault runtime replans over the surviving subgraph, pre-filtering flows
  // to reachable (src, dst) pairs. Flows whose endpoints cannot reach each
  // other are the caller's responsibility to exclude.
  WIMESH_ASSERT(topology.graph.node_count() > 0);
}

std::vector<NodeId> QosPlanner::route(
    NodeId src, NodeId dst,
    const std::vector<std::vector<double>>& link_load) const {
  WIMESH_ASSERT(src != dst);
  if (routing_ == RoutingPolicy::kHopCount) {
    const auto parents = spanning_tree_parents(topology_.graph, src);
    std::vector<NodeId> path{dst};
    while (path.back() != src) {
      const NodeId p = parents[static_cast<std::size_t>(path.back())];
      WIMESH_ASSERT(p != kInvalidNode);
      path.push_back(p);
    }
    std::reverse(path.begin(), path.end());
    return path;
  }

  // Load-aware: arc weight 1 + reserved airtime fraction of the frame.
  // The "+1" keeps hop count dominant until links approach saturation, so
  // detours are only taken when they actually relieve congestion.
  const double frame_s = params_.frame.frame_duration.to_seconds();
  Digraph g(topology_.node_count());
  for (EdgeId e = 0; e < topology_.graph.edge_count(); ++e) {
    const auto& ed = topology_.graph.edge(e);
    const auto load_of = [&](NodeId a, NodeId b) {
      return link_load[static_cast<std::size_t>(a)]
                      [static_cast<std::size_t>(b)];
    };
    g.add_arc(ed.u, ed.v, 1.0 + 8.0 * load_of(ed.u, ed.v) / frame_s);
    g.add_arc(ed.v, ed.u, 1.0 + 8.0 * load_of(ed.v, ed.u) / frame_s);
  }
  const auto tree = dijkstra(g, src);
  auto path = tree.path_to(g, dst);
  WIMESH_ASSERT(!path.empty());
  return path;
}

namespace {

// Minislots needed on one link: guard + the busy time of all packets it
// must carry per frame, rounded up to whole slots.
int slots_for_busy_time(const EmulationParams& params, SimTime busy) {
  if (busy <= SimTime::zero()) return 0;
  const SimTime needed = busy + params.guard_time;
  const SimTime slot = params.frame.slot_duration();
  return static_cast<int>((needed + slot - SimTime::nanoseconds(1)) / slot);
}

// Gaps of the frame not overlapping any `busy` range, in slot order.
std::vector<SlotRange> free_gaps(std::vector<SlotRange> busy,
                                 int frame_slots) {
  std::sort(busy.begin(), busy.end(),
            [](const SlotRange& a, const SlotRange& b) {
              return a.start < b.start;
            });
  std::vector<SlotRange> gaps;
  int cursor = 0;
  for (const SlotRange& b : busy) {
    if (b.start > cursor) gaps.push_back(SlotRange{cursor, b.start - cursor});
    cursor = std::max(cursor, b.end());
  }
  if (cursor < frame_slots) {
    gaps.push_back(SlotRange{cursor, frame_slots - cursor});
  }
  return gaps;
}

}  // namespace

BuiltProblem QosPlanner::build_problem(
    const std::vector<FlowSpec>& flows) const {
  BuiltProblem out;

  // ---- 1. Route everything and register links. Guaranteed flows are
  // routed first so best-effort detours cannot displace voice; within a
  // class, declaration order decides (as admission would).
  const auto node_count = static_cast<std::size_t>(topology_.node_count());
  std::vector<std::vector<double>> link_load(
      node_count, std::vector<double>(node_count, 0.0));
  std::vector<FlowSpec> ordered;
  for (const FlowSpec& spec : flows) {
    if (spec.service == ServiceClass::kGuaranteed) ordered.push_back(spec);
  }
  for (const FlowSpec& spec : flows) {
    if (spec.service == ServiceClass::kBestEffort) ordered.push_back(spec);
  }
  for (const FlowSpec& spec : ordered) {
    WIMESH_ASSERT(spec.src >= 0 && spec.src < topology_.node_count());
    WIMESH_ASSERT(spec.dst >= 0 && spec.dst < topology_.node_count());
    FlowPlan f;
    f.spec = spec;
    f.node_path = route(spec.src, spec.dst, link_load);
    for (std::size_t i = 1; i < f.node_path.size(); ++i) {
      f.links.push_back(
          out.problem.links.add({f.node_path[i - 1], f.node_path[i]}));
    }
    // Arrivals per frame the grant must absorb (persistent per-frame
    // grants, as in 802.16 mesh centralized scheduling).
    const SimTime frame = params_.frame.frame_duration;
    f.packets_per_frame = static_cast<int>(
        (frame + spec.packet_interval - SimTime::nanoseconds(1)) /
        spec.packet_interval);
    // Record the airtime this flow reserves per frame on each hop so the
    // load-aware router sees it when placing the next flow.
    const double per_frame_airtime_s =
        DcfMac::overlay_service_time(phy_, spec.packet_bytes).to_seconds() *
        f.packets_per_frame;
    for (std::size_t i = 1; i < f.node_path.size(); ++i) {
      link_load[static_cast<std::size_t>(f.node_path[i - 1])]
               [static_cast<std::size_t>(f.node_path[i])] +=
          per_frame_airtime_s;
    }
    // worst delay <= (budget + 2) frames (initial wait + per-wrap frames +
    // the in-frame traversal), so the budget below is conservative.
    f.delay_budget_frames = std::max<int>(
        0, static_cast<int>(spec.max_delay / frame) - 2);
    if (spec.service == ServiceClass::kGuaranteed) {
      out.guaranteed.push_back(std::move(f));
    } else {
      out.best_effort.push_back(std::move(f));
    }
  }

  // ---- 2. Per-link guaranteed demand (busy time → slots).
  const auto link_count = static_cast<std::size_t>(out.problem.links.count());
  std::vector<SimTime> busy(link_count, SimTime::zero());
  for (const FlowPlan& f : out.guaranteed) {
    const SimTime per_packet =
        DcfMac::overlay_service_time(phy_, f.spec.packet_bytes);
    for (LinkId l : f.links) {
      busy[static_cast<std::size_t>(l)] += per_packet * f.packets_per_frame;
    }
  }
  out.problem.demand.resize(link_count);
  for (std::size_t l = 0; l < link_count; ++l) {
    out.problem.demand[l] = slots_for_busy_time(params_, busy[l]);
  }

  // ---- 3. Conflict graph, plus the flow paths the delay-aware ILP caps.
  // With a physical radio environment, link pairs conflict by mean SINR
  // instead of protocol-model ranges; everything downstream (scheduler,
  // delay bounds, admission) is agnostic to which builder produced it.
  out.problem.conflicts =
      radio_env_ != nullptr
          ? build_conflict_graph_sinr(out.problem.links, *radio_env_)
          : build_conflict_graph(out.problem.links, topology_.positions,
                                 radio_);
  for (const FlowPlan& f : out.guaranteed) {
    FlowPath fp;
    fp.links = f.links;
    fp.delay_budget_frames = f.delay_budget_frames;
    out.problem.flows.push_back(std::move(fp));
  }
  return out;
}

Expected<MeshPlan> QosPlanner::plan(const std::vector<FlowSpec>& flows,
                                    SchedulerKind kind,
                                    const IlpSchedulerOptions& ilp_options,
                                    PlanObjective objective,
                                    const zones::ZoneOptions* zoned) const {
  const trace::Span span(trace::SpanName::kQosPlan);
  MeshPlan plan;
  const bool use_zones =
      zoned != nullptr && zoned->zone_count > 0 &&
      (kind == SchedulerKind::kIlpDelayAware ||
       kind == SchedulerKind::kIlpDelayUnaware) &&
      objective == PlanObjective::kMinimizeSlots;

  // ---- 1.–3. Route, size demands, build conflicts (shared with the
  // admission engine so both sides pose byte-identical problems).
  BuiltProblem built = build_problem(flows);
  const SchedulingProblem& problem = built.problem;
  plan.links = built.problem.links;
  plan.guaranteed_demand = built.problem.demand;
  plan.conflicts = built.problem.conflicts;
  plan.guaranteed = std::move(built.guaranteed);
  plan.best_effort = std::move(built.best_effort);

  // ---- 4. Schedule the guaranteed class.
  const int data_slots = params_.frame.data_slots;
  // Resolved options actually fed to the solvers; also serialized into the
  // cache key so a cached answer can never cross option boundaries.
  IlpSchedulerOptions opt = ilp_options;
  opt.delay_aware = kind == SchedulerKind::kIlpDelayAware;
  const auto solve = [&]() -> CachedSchedule {
    CachedSchedule out;
    switch (kind) {
      case SchedulerKind::kIlpDelayAware:
      case SchedulerKind::kIlpDelayUnaware: {
        if (objective == PlanObjective::kFeasibility) {
          // Single feasibility question at the full data subframe. The
          // greedy-clique lower bound rejects most over-capacity requests
          // instantly (admission control under overload hits this path for
          // nearly every arrival); then cheap heuristics, then the ILP.
          if (schedule_length_lower_bound(problem.links, problem.demand,
                                          problem.conflicts) > data_slots) {
            out.error = "infeasible: clique bound exceeds the subframe";
            return out;
          }
          std::optional<ScheduleResult> heuristic;
          if (opt.try_heuristics) {
            for (auto h : {&schedule_flow_order_greedy, &schedule_greedy}) {
              auto attempt = h(problem, data_slots);
              if (attempt.has_value() &&
                  (!opt.delay_aware ||
                   budgets_satisfied(problem, attempt->schedule))) {
                heuristic = std::move(attempt);
                break;
              }
            }
          }
          if (heuristic.has_value()) {
            out.schedule = std::move(heuristic->schedule);
          } else {
            auto r = schedule_ilp(problem, data_slots, opt);
            if (!r.has_value()) {
              out.error = r.error();
              return out;
            }
            out.schedule = std::move(r->schedule);
            out.ilp_nodes = r->ilp_nodes;
          }
          out.search_stages = 1;
        } else {
          auto r = min_slots_search(problem, data_slots, opt);
          if (!r.has_value()) {
            out.error = r.error();
            return out;
          }
          out.schedule = std::move(r->result.schedule);
          out.ilp_nodes = r->result.ilp_nodes;
          out.search_stages = r->stages;
        }
        break;
      }
      case SchedulerKind::kGreedy: {
        auto r = schedule_greedy(problem, data_slots);
        if (!r.has_value()) {
          out.error = "greedy: infeasible";
          return out;
        }
        out.schedule = std::move(r->schedule);
        break;
      }
      case SchedulerKind::kRoundRobin: {
        auto r = schedule_round_robin(problem, data_slots);
        if (!r.has_value()) {
          out.error = "round-robin: infeasible";
          return out;
        }
        out.schedule = std::move(r->schedule);
        break;
      }
    }
    out.feasible = true;
    return out;
  };

  CachedSchedule solved;
  if (use_zones) {
    // Zoned path: phase-1 parallel per-zone searches + deterministic
    // border reconciliation. Bypasses the schedule cache (zone-local
    // subproblems would alias global cache keys).
    const trace::Span compose_span(trace::SpanName::kZoneCompose);
    zones::ZoneOptions zone_opts = *zoned;
    zone_opts.ilp = opt;
    zones::ZonePartition partition;
    if (!zone_opts.explicit_zone_of_node.empty()) {
      // Caller-supplied partition (fault-induced islands).
      partition.zone_count = zone_opts.zone_count;
      partition.zone_of_node = zone_opts.explicit_zone_of_node;
    } else {
      partition =
          zones::partition_zones(topology_.graph, zone_opts.zone_count);
    }
    auto zoned_result =
        zones::schedule_zoned(problem, partition, data_slots, zone_opts);
    if (!zoned_result.has_value()) return make_error(zoned_result.error());
    solved.feasible = true;
    solved.schedule = std::move(zoned_result->schedule);
    plan.zone_count = partition.zone_count;
    plan.border_links = zoned_result->border_links;
    plan.relocated_border_links = zoned_result->relocated_border_links;
    for (const zones::ZoneStats& z : zoned_result->zones) {
      plan.zone_slots.push_back(z.slots);
    }
  } else {
    solved = ilp_options.cache != nullptr
                 ? ilp_options.cache->get_or_compute(
                       schedule_cache_key(problem, data_slots,
                                          static_cast<int>(kind),
                                          static_cast<int>(objective), opt),
                       solve)
                 : solve();
  }
  if (!solved.feasible) return make_error(std::move(solved.error));
  plan.ilp_nodes = solved.ilp_nodes;
  plan.search_stages = solved.search_stages;
  // The solved schedule may be sized to the minimal S; re-house the grants
  // in the full data subframe so the leftover slots exist for best-effort
  // placement.
  plan.schedule = MeshSchedule(plan.links, data_slots);
  for (LinkId l = 0; l < plan.links.count(); ++l) {
    if (const auto g = solved.schedule.grant(l)) plan.schedule.set_grant(l, *g);
  }
  plan.guaranteed_slots_used = plan.schedule.used_slots();

  // ---- 5. Verify guaranteed delay bounds against the actual schedule.
  for (FlowPlan& f : plan.guaranteed) {
    FlowPath fp;
    fp.links = f.links;
    const int slots = worst_case_delay_slots(plan.schedule, fp,
                                             params_.frame.total_slots());
    f.worst_case_delay = params_.frame.slot_duration() * slots;
    f.delay_bound_met = f.worst_case_delay <= f.spec.max_delay;
    // Zoned solves give up the global delay proof (cross-zone flows and
    // border relocations escape any single zone's constraints), so a
    // missed bound is reported via delay_bound_met rather than fatal.
    if (kind == SchedulerKind::kIlpDelayAware && !f.delay_bound_met &&
        !use_zones) {
      return make_error(str_cat("flow ", f.spec.id,
                                " misses its delay bound: ",
                                f.worst_case_delay.to_string(), " > ",
                                f.spec.max_delay.to_string()));
    }
  }

  // ---- 6. Best-effort grants from leftover slots (shrink to fit).
  // Per-link BE slot request.
  std::vector<SimTime> be_busy(static_cast<std::size_t>(plan.links.count()),
                               SimTime::zero());
  for (FlowPlan& f : plan.best_effort) {
    const SimTime per_packet =
        DcfMac::overlay_service_time(phy_, f.spec.packet_bytes);
    for (LinkId l : f.links) {
      be_busy[static_cast<std::size_t>(l)] += per_packet * f.packets_per_frame;
    }
  }
  // Allocation is round-robin in packet-carrying granules so that no link
  // starves: a multi-hop best-effort path is only as good as its worst hop,
  // and a sequential first-come sweep would hand all leftover slots to the
  // lowest-numbered links.
  std::vector<int> remaining(static_cast<std::size_t>(plan.links.count()), 0);
  std::vector<int> granule(static_cast<std::size_t>(plan.links.count()), 0);
  std::vector<std::size_t> max_bytes(
      static_cast<std::size_t>(plan.links.count()), 0);
  for (const FlowPlan& f : plan.best_effort) {
    for (LinkId l : f.links) {
      max_bytes[static_cast<std::size_t>(l)] =
          std::max(max_bytes[static_cast<std::size_t>(l)],
                   f.spec.packet_bytes);
    }
  }
  bool any_request = false;
  for (LinkId l = 0; l < plan.links.count(); ++l) {
    const auto idx = static_cast<std::size_t>(l);
    remaining[idx] = slots_for_busy_time(params_, be_busy[idx]);
    if (remaining[idx] == 0) continue;
    // Smallest block that still carries at least one packet; smaller
    // fragments would waste their guard and carry nothing.
    granule[idx] =
        block_for_packets(params_, phy_, 1, max_bytes[idx]);
    if (granule[idx] <= 0) {
      remaining[idx] = 0;
      continue;
    }
    any_request = true;
  }
  while (any_request) {
    bool pass_progress = false;
    for (LinkId l = 0; l < plan.links.count(); ++l) {
      const auto idx = static_cast<std::size_t>(l);
      if (remaining[idx] <= 0) continue;
      const int chunk = granule[idx];
      std::vector<SlotRange> busy_ranges = plan.schedule.all_grants(l);
      for (EdgeId e : plan.conflicts.incident(l)) {
        const LinkId m = plan.conflicts.other_end(e, l);
        const auto mg = plan.schedule.all_grants(m);
        busy_ranges.insert(busy_ranges.end(), mg.begin(), mg.end());
      }
      bool placed = false;
      for (const SlotRange& gap :
           free_gaps(std::move(busy_ranges), data_slots)) {
        if (gap.length < chunk) continue;
        plan.schedule.add_extra_grant(l, SlotRange{gap.start, chunk});
        remaining[idx] -= chunk;
        placed = true;
        break;
      }
      // No gap can ever fit this granule again: the link is done.
      if (!placed) remaining[idx] = 0;
      pass_progress |= placed;
    }
    any_request = false;
    for (int r : remaining) any_request |= r > 0;
    if (!pass_progress) break;
  }

  return plan;
}

QosPlanner::AdmissionResult QosPlanner::admit_incrementally(
    const std::vector<FlowSpec>& flows, SchedulerKind kind,
    const IlpSchedulerOptions& ilp_options) const {
  AdmissionResult best;
  best.admitted = 0;
  // Longest feasible prefix; each attempt re-plans from scratch, exactly as
  // a centralized 802.16 scheduler would on each admission request. Only
  // feasibility matters per candidate, so the cheap objective is used.
  std::vector<FlowSpec> prefix;
  for (const FlowSpec& spec : flows) {
    prefix.push_back(spec);
    auto attempt =
        plan(prefix, kind, ilp_options, PlanObjective::kFeasibility);
    if (!attempt.has_value()) break;
    best.plan = std::move(*attempt);
    best.admitted = prefix.size();
  }
  if (best.admitted > 0) {
    // One final min-slots pass over the admitted set, so the returned plan
    // carries the paper's compact schedule; keep the feasibility plan if
    // the search exhausts its limits.
    prefix.resize(best.admitted);
    auto final_plan = plan(prefix, kind, ilp_options);
    if (final_plan.has_value()) best.plan = std::move(*final_plan);
  }
  return best;
}

}  // namespace wimesh
