#pragma once

// Traffic generators.
//
// Sources emit MacPackets with flow id, size and creation timestamp filled
// in; the owner (core::SimulationRunner) routes them. VoIP presets follow
// the standard codec packetizations the paper's evaluation traffic uses.

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "wimesh/common/expected.h"
#include "wimesh/common/rng.h"
#include "wimesh/des/simulator.h"
#include "wimesh/wifi/packet.h"

namespace wimesh {

// IP + UDP + RTP headers carried by every voice packet.
inline constexpr std::size_t kRtpUdpIpOverheadBytes = 40;

struct VoipCodec {
  std::string name;
  std::size_t voice_payload_bytes = 0;  // codec frame(s) per packet
  SimTime packet_interval{};

  std::size_t packet_bytes() const {
    return voice_payload_bytes + kRtpUdpIpOverheadBytes;
  }
  double rate_bps() const {
    return static_cast<double>(packet_bytes()) * 8.0 /
           packet_interval.to_seconds();
  }

  // G.711, 20 ms packetization: 160 B voice + 40 B headers every 20 ms.
  static VoipCodec g711();
  // G.729, 20 ms packetization: 20 B voice + 40 B headers every 20 ms.
  static VoipCodec g729();
  // G.723.1 (6.3 kbit/s), 30 ms frames: 24 B voice + 40 B headers.
  static VoipCodec g723();
};

class TrafficSource {
 public:
  // Receives each generated packet (id, flow_id, bytes, created_at set).
  using EmitFn = std::function<void(MacPacket)>;

  virtual ~TrafficSource() = default;

  // Begins emitting on [start, stop); idempotent per source instance.
  virtual void start(SimTime start, SimTime stop) = 0;

  std::uint64_t packets_emitted() const { return emitted_; }

 protected:
  TrafficSource(Simulator& sim, int flow_id, EmitFn emit)
      : sim_(sim), flow_id_(flow_id), emit_(std::move(emit)) {}

  void emit_packet(std::size_t bytes);

  Simulator& sim_;
  int flow_id_;
  EmitFn emit_;
  std::uint64_t emitted_ = 0;
};

// Constant bit rate: fixed-size packets at a fixed interval, with an
// optional random phase so simultaneous sources do not synchronize.
class CbrSource : public TrafficSource {
 public:
  CbrSource(Simulator& sim, int flow_id, EmitFn emit, std::size_t bytes,
            SimTime interval, SimTime phase = SimTime::zero());

  static std::unique_ptr<CbrSource> voip(Simulator& sim, int flow_id,
                                         EmitFn emit, const VoipCodec& codec,
                                         SimTime phase = SimTime::zero());

  void start(SimTime start, SimTime stop) override;

 private:
  void tick(SimTime stop);
  std::size_t bytes_;
  SimTime interval_;
  SimTime phase_;
};

// Poisson arrivals with fixed packet size (best-effort background load).
class PoissonSource : public TrafficSource {
 public:
  PoissonSource(Simulator& sim, int flow_id, EmitFn emit, std::size_t bytes,
                double rate_bps, Rng rng);

  void start(SimTime start, SimTime stop) override;

 private:
  void schedule_next(SimTime stop);
  std::size_t bytes_;
  double mean_interarrival_s_;
  Rng rng_;
};

// Frame-structured VBR video (streaming-camera style): a frame every
// `frame_interval` whose size is lognormal-ish around `mean_frame_bytes`
// with periodic large intra frames every `gop` frames (I/P pattern). Each
// video frame is packetized into `mtu_bytes` chunks emitted back to back.
class VbrVideoSource : public TrafficSource {
 public:
  struct Profile {
    SimTime frame_interval = SimTime::milliseconds(40);  // 25 fps
    std::size_t mean_frame_bytes = 6000;                 // ~1.2 Mbit/s
    double size_stddev_factor = 0.3;   // sigma as a fraction of the mean
    int gop = 12;                      // I-frame period
    double intra_scale = 2.5;          // I-frame size multiplier
    std::size_t mtu_bytes = 1200;
  };

  VbrVideoSource(Simulator& sim, int flow_id, EmitFn emit, Profile profile,
                 Rng rng);

  void start(SimTime start, SimTime stop) override;

  double mean_rate_bps() const;

 private:
  void tick(SimTime stop);
  Profile profile_;
  Rng rng_;
  int frame_index_ = 0;
};

// Replays a recorded packet trace: (time offset, bytes) pairs relative to
// the start instant. Offsets must be non-decreasing. Useful for feeding
// measured traffic (e.g. real VoIP/video captures) through the mesh.
class TraceReplaySource : public TrafficSource {
 public:
  struct Entry {
    SimTime offset;
    std::size_t bytes;
  };

  TraceReplaySource(Simulator& sim, int flow_id, EmitFn emit,
                    std::vector<Entry> trace, bool loop = false);

  void start(SimTime start, SimTime stop) override;

  // Parses "offset_us,bytes" lines (one entry per line; '#' comments and
  // blank lines skipped). Returns an error message on malformed input.
  static Expected<std::vector<Entry>> parse(const std::string& text);

 private:
  void emit_at(std::size_t index, SimTime base, SimTime stop);
  std::vector<Entry> trace_;
  bool loop_;
};

// Exponential on/off bursts; CBR at `peak_rate_bps` while on.
class OnOffSource : public TrafficSource {
 public:
  OnOffSource(Simulator& sim, int flow_id, EmitFn emit, std::size_t bytes,
              double peak_rate_bps, SimTime mean_on, SimTime mean_off,
              Rng rng);

  void start(SimTime start, SimTime stop) override;

 private:
  void enter_on(SimTime stop);
  void enter_off(SimTime stop);
  void tick(SimTime stop);
  std::size_t bytes_;
  SimTime packet_interval_;
  SimTime mean_on_;
  SimTime mean_off_;
  Rng rng_;
  bool on_ = false;
  SimTime on_until_{};
};

}  // namespace wimesh
