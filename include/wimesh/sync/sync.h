#pragma once

// Time synchronization substrate for the TDMA-over-WiFi overlay.
//
// WiFi NICs have no shared TDMA clock, so the paper's overlay keeps nodes
// aligned with a beacon-based protocol rooted at a master node and pads
// slots with guard time to absorb the residual error. This module models
// exactly the quantities that matter to the overlay:
//
//  * per-node crystal drift (fixed ppm offset drawn per node),
//  * a periodic resync that propagates hop-by-hop down a spanning tree,
//    accumulating a random timestamping error per hop,
//  * the resulting per-node clock error as a function of global time.
//
// The sync messages themselves ride in the 802.16-style control subframe,
// which FrameConfig already reserves; their airtime therefore does not
// consume data minislots and is not separately simulated.

#include <memory>
#include <vector>

#include "wimesh/common/expected.h"
#include "wimesh/common/rng.h"
#include "wimesh/des/simulator.h"
#include "wimesh/graph/graph.h"
#include "wimesh/graph/topology.h"

namespace wimesh {

struct SyncConfig {
  // Interval between resync waves from the master.
  SimTime resync_interval = SimTime::milliseconds(500);
  // Std-dev of the per-hop timestamping error added at each tree hop.
  SimTime per_hop_error_stddev = SimTime::microseconds(2);
  // Std-dev of per-node crystal drift in ppm (typical crystals: 5–20 ppm).
  double drift_ppm_stddev = 10.0;

  // Conservative bound on one node's clock error: 3 sigma of the
  // accumulated per-hop error random walk plus worst drift between syncs.
  SimTime max_error_bound(int max_hops) const;

  // Guard time covering the mutual misalignment of two nodes (each can be
  // off by max_error_bound in opposite directions).
  SimTime recommended_guard(int max_hops) const {
    return max_error_bound(max_hops) * 2;
  }
};

// Drives resync waves on the simulator and answers clock queries.
class SyncProtocol {
 public:
  // `topology` must be connected and outlive the protocol (re-rooting after
  // a master failure walks it again); the spanning tree is rooted at
  // `master`. Until the first wave completes, nodes run on their initial
  // (unsynced) offsets, drawn uniform in (-initial_offset_bound,
  // initial_offset_bound) — a cold clock is equally likely to be ahead of
  // or behind true time. Violating the preconditions trips WIMESH_ASSERT;
  // use validate()/create() for a recoverable error instead.
  SyncProtocol(Simulator& sim, const Graph& topology, NodeId master,
               SyncConfig config, Rng rng,
               SimTime initial_offset_bound = SimTime::microseconds(50));

  // Checks the constructor preconditions and reports a typed error instead
  // of aborting: the master must be a node of `topology` and the topology
  // must be connected (a partitioned mesh cannot share one time reference).
  static Expected<bool> validate(const Graph& topology, NodeId master);

  // Validating factory: validate() + construct.
  static Expected<std::unique_ptr<SyncProtocol>> create(
      Simulator& sim, const Graph& topology, NodeId master, SyncConfig config,
      Rng rng, SimTime initial_offset_bound = SimTime::microseconds(50));

  // Begins periodic resync waves at t = 0 (the first wave is immediate).
  void start();

  // ---- Fault injection / failover surface (wimesh/faults).

  // The master's beacon process dies: pending and future waves stop and
  // every clock free-runs on its last correction until re_root().
  void fail_master();

  // Re-roots the spanning tree at `new_master` over the subgraph induced by
  // `alive` (one entry per node, nonzero = up) and resumes waves
  // immediately. Nodes unreachable from the new master keep free-running.
  // `new_master` must be alive.
  void re_root(NodeId new_master, const std::vector<char>& alive);

  // Partition-tolerant variant: re-roots an independent spanning tree at
  // each of `masters` (one per island, every one alive) over the
  // alive-induced subgraph, so each island keeps its own time reference
  // while the mesh is split. Waves resume immediately and cover every tree
  // in the forest; masters() lists the roots and master() the primary
  // (first) one. Nodes unreachable from every master keep free-running.
  void re_root_forest(const std::vector<NodeId>& masters,
                      const std::vector<char>& alive);

  // Applies a one-off step to node n's clock (crystal glitch / operator
  // error); the next wave re-absorbs it.
  void step_clock(NodeId n, SimTime delta);

  bool master_alive() const { return master_alive_; }

  // Whether node n is reached by resync waves from the current master.
  bool synced(NodeId n) const {
    return depth_[static_cast<std::size_t>(n)] >= 0;
  }

  // Clock error of node n at global time t: local(t) - t.
  SimTime error(NodeId n, SimTime t) const;

  // Local clock reading of node n at global time t.
  SimTime local_time(NodeId n, SimTime t) const {
    return t + error(n, t);
  }

  // Global time at which node n's clock will read `local_target`.
  // Requires local_target to be at or after the node's current local time.
  SimTime global_time_for_local(NodeId n, SimTime local_target) const;

  NodeId master() const { return master_; }
  // All current tree roots: one entry per island after re_root_forest(),
  // a single entry otherwise. masters().front() == master().
  const std::vector<NodeId>& masters() const { return masters_; }
  // The root of the sync tree that reaches node n (one of masters()), or
  // kInvalidNode when n free-runs unreachable from every master.
  NodeId master_of(NodeId n) const {
    return root_of_[static_cast<std::size_t>(n)];
  }
  // Forest-wide maximum depth (the guard dimensioning input).
  int max_tree_depth() const { return max_depth_; }
  const SyncConfig& config() const { return config_; }
  std::uint64_t waves_completed() const { return waves_; }

 private:
  struct ClockState {
    double drift_ppm = 0.0;   // fixed crystal error
    SimTime offset{};         // error at last_sync
    SimTime last_sync{};
  };

  void run_wave();
  void schedule_wave(SimTime at);

  Simulator& sim_;
  const Graph* topology_;  // not owned; needed again by re_root()
  NodeId master_;
  std::vector<NodeId> masters_;  // forest roots; front() == master_
  SyncConfig config_;
  Rng rng_;
  std::vector<NodeId> parent_;  // spanning forest
  std::vector<NodeId> root_of_;  // reaching master, kInvalidNode = none
  std::vector<int> depth_;      // -1 = unreachable from every master
  int max_depth_ = 0;
  std::vector<ClockState> clocks_;
  std::uint64_t waves_ = 0;
  // Bumped by fail_master()/re_root(); pending wave events carry the epoch
  // they were scheduled under and fizzle if it has moved on.
  std::uint64_t epoch_ = 0;
  bool master_alive_ = true;
};

}  // namespace wimesh
