#pragma once

// Parallel batch experiment runner.
//
// Every reconstructed figure is a sweep of independent simulation runs
// over seeds or parameters. This runner executes each run on its own
// Simulator with a per-run deterministic RNG stream derived from
// (base_seed, run_index), and collects results in submission order — so
// the aggregated output is bit-identical no matter how many worker
// threads execute the sweep or in what order runs finish.
//
// Determinism contract:
//  * run i's scenario seed is Rng::derive_stream(base_seed, run_index) —
//    a pure function, independent of thread placement;
//  * each run owns every piece of mutable simulation state (Simulator,
//    MACs, sources, stats);
//  * the only cross-run shared state is the optional ScheduleCache, whose
//    hits return exactly what the solver would have produced (exact-key
//    memoization of deterministic solvers);
//  * results_json() serializes outcomes in submission order with fixed
//    number formatting and no timing data.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "wimesh/core/scenario.h"
#include "wimesh/sched/schedule_cache.h"
#include "wimesh/trace/trace.h"

namespace wimesh::batch {

// One run of a sweep: a complete scenario plus the coordinates of its RNG
// stream. The scenario's own seed is ignored in favour of the derived
// per-run stream (single-run tools keep using Scenario directly).
struct RunSpec {
  Scenario scenario;
  std::uint64_t base_seed = 1;
  std::uint64_t run_index = 0;
  std::string label;
};

struct RunOutcome {
  std::uint64_t run_index = 0;
  std::uint64_t derived_seed = 0;
  std::string label;
  bool ok = false;
  std::string error;  // planning/admission failure when !ok
  SimulationResult result;
  // Per-run event trace, present when tracing was requested (via
  // BatchOptions::trace or the scenario's trace_categories). A run's
  // records are bound to the worker thread executing it, so the virtual-
  // time stream is independent of --jobs. shared_ptr keeps RunOutcome
  // copyable.
  std::shared_ptr<trace::Tracer> trace;
};

struct BatchOptions {
  int jobs = 1;
  // Shared schedule memoization across runs; not owned, may be null.
  ScheduleCache* schedule_cache = nullptr;
  // Tracing for every run: when trace.categories is 0 the per-scenario
  // trace_categories (trace= key) is used instead; if both are 0 no
  // Tracer is allocated and runs pay only the disabled-branch cost.
  trace::TraceConfig trace{0, std::size_t{1} << 16};
};

// Expands a base scenario into one RunSpec per sweep index in
// [index_lo, index_hi] (inclusive). base_seed is taken from the scenario's
// own seed; labels are "seed=<index>".
std::vector<RunSpec> seed_sweep(const Scenario& base, std::uint64_t index_lo,
                                std::uint64_t index_hi);

// Runs every spec (plan + packet-level simulation) and returns outcomes in
// spec order. Failed planning is reported per-run, not thrown.
std::vector<RunOutcome> run_batch(const std::vector<RunSpec>& specs,
                                  const BatchOptions& options);

// Deterministic JSON document for a finished batch: per-run per-flow
// delivery counts, loss, delay quantiles, jitter and throughput, plus the
// channel diagnostics. Excludes wall-clock timing and cache statistics on
// purpose — those vary across thread counts; this string must not.
std::string results_json(const std::vector<RunOutcome>& outcomes);

// Aligned text table summarizing a batch, one row per run.
std::string results_table(const std::vector<RunOutcome>& outcomes);

}  // namespace wimesh::batch
