#pragma once

// Forwarding header: the work-stealing executor moved to wimesh/exec so
// low-level modules (notably the ILP portfolio branch & bound) can use it
// without depending on the batch runner. Existing wimesh::batch call sites
// keep compiling unchanged.

#include "wimesh/exec/executor.h"

namespace wimesh::batch {

using exec::effective_jobs;
using exec::run_indexed;

}  // namespace wimesh::batch
