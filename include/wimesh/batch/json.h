#pragma once

// Minimal deterministic JSON writer.
//
// Sweep outputs must be byte-identical across thread counts and repeated
// runs, so this writer is strictly insertion-ordered (no map reordering),
// formats every double with one fixed rule ("%.17g", round-trip exact),
// and renders non-finite values as null. It builds into a string; callers
// decide where the bytes go.

#include <cstdint>
#include <string>
#include <vector>

#include "wimesh/common/json.h"

namespace wimesh::batch {

// String escaping lives in wimesh::common (shared with the trace
// exporter); re-exported here for existing callers.
using wimesh::json_escape;

class JsonWriter {
 public:
  // Scopes. begin_* inside an object requires a preceding key().
  void begin_object();
  void end_object();
  void begin_array();
  void end_array();

  // Next member's name (objects only).
  void key(const std::string& name);

  void value(const std::string& s);
  void value(const char* s);
  void value(double d);
  void value(std::int64_t i);
  void value(std::uint64_t u);
  void value(int i) { value(static_cast<std::int64_t>(i)); }
  void value(bool b);
  void null();

  // The serialized document so far.
  const std::string& str() const { return out_; }

 private:
  void comma();
  std::string out_;
  // One flag per open scope: whether a value has been emitted in it.
  std::vector<bool> scope_has_item_;
  bool pending_key_ = false;
};

}  // namespace wimesh::batch
