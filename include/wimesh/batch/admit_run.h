#pragma once

// Admission-churn runner: executes a scenario's 'admit =' replay
// (wimesh::admit) instead of a packet-level simulation, and renders the
// text / JSON reports behind `wimesh_run --admit`.

#include <string>

#include "wimesh/admit/engine.h"
#include "wimesh/core/scenario.h"
#include "wimesh/sched/schedule_cache.h"

namespace wimesh::batch {

struct AdmitRunResult {
  admit::ChurnResult churn;
  // Populated when the scenario asked for 'check' (every capacity-gated
  // decision cross-checked against the cold re-solve oracle).
  admit::DifferentialReport differential;
  bool checked = false;
};

// Builds an AdmissionEngine from the scenario's resolved MeshConfig (guard
// time resolved exactly as MeshNetwork resolves it) and replays the Poisson
// churn the scenario describes. `cache` (optional, not owned) memoizes the
// stage-3 solves; sharing it across runs never changes any decision.
AdmitRunResult run_admission_churn(const Scenario& scenario,
                                   ScheduleCache* cache = nullptr);

// Human-readable report: decision counters by stage, latency percentiles,
// blocking probability, carried-call statistics, oracle verdict.
std::string format_admit_report(const Scenario& scenario,
                                const AdmitRunResult& result);

// JSON document for one churn run. Counters and blocking are deterministic
// in the spec seed; the latency block is wall clock and varies run to run.
std::string admit_json(const Scenario& scenario, const AdmitRunResult& result);

}  // namespace wimesh::batch
