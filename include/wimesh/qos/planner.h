#pragma once

// QoS planner: routes flows, maps rates to per-link minislot demands, runs
// the chosen scheduler for the guaranteed class, fits best-effort grants
// into the leftover slots, and verifies per-flow delay bounds against the
// resulting schedule. This is the control-plane counterpart of the TDMA
// overlay (which executes the plan).

#include <vector>

#include "wimesh/common/expected.h"
#include "wimesh/graph/topology.h"
#include "wimesh/phy/phy.h"
#include "wimesh/phy/radio_model.h"
#include "wimesh/qos/flow.h"
#include "wimesh/radio/medium.h"
#include "wimesh/sched/scheduler.h"
#include "wimesh/tdma/overlay.h"
#include "wimesh/zones/zones.h"

namespace wimesh {

enum class SchedulerKind {
  kIlpDelayAware,    // the paper's scheduler
  kIlpDelayUnaware,  // ILP without delay budgets (bandwidth only)
  kGreedy,           // first-fit baseline
  kRoundRobin,       // naive ordering baseline
};

enum class RoutingPolicy {
  // Fewest hops (BFS); deterministic tie-break. The paper's default.
  kHopCount,
  // Dijkstra with congestion-sensitive weights: flows are routed one at a
  // time and each link's weight grows with the airtime already reserved on
  // it, spreading load across parallel paths (capacity extension, R-A3).
  kLoadAware,
};

enum class PlanObjective {
  // Linear search for the shortest schedule (the paper's optimization;
  // leftover slots feed best effort).
  kMinimizeSlots,
  // Any feasible schedule within the data subframe — much cheaper; used
  // per-candidate by incremental admission where only the accept/reject
  // answer matters.
  kFeasibility,
};

// One flow's realized plan.
struct FlowPlan {
  FlowSpec spec;
  std::vector<NodeId> node_path;  // src … dst
  std::vector<LinkId> links;      // per hop
  int packets_per_frame = 0;      // arrivals the grant must carry per frame
  int delay_budget_frames = 0;    // wraps the delay bound tolerates
  // Filled after scheduling:
  SimTime worst_case_delay{};     // analytic bound under the schedule
  bool delay_bound_met = false;
};

// The scheduling question plan() poses, before any solver runs: routed
// flows, per-link guaranteed demand, and the conflict graph. Exposed so
// incremental admission (wimesh::admit) provably constructs the exact same
// problem a cold plan() would — the differential-testing contract between
// the two hinges on this being one code path, not two copies.
struct BuiltProblem {
  SchedulingProblem problem;            // links, demands, conflicts, paths
  std::vector<FlowPlan> guaranteed;     // routed; schedule fields unset
  std::vector<FlowPlan> best_effort;    // routed; never gates admission
};

struct MeshPlan {
  LinkSet links;
  std::vector<int> guaranteed_demand;  // minislots per link (guaranteed)
  Graph conflicts;
  MeshSchedule schedule;               // guaranteed + best-effort grants
  std::vector<FlowPlan> guaranteed;
  std::vector<FlowPlan> best_effort;
  int guaranteed_slots_used = 0;
  long ilp_nodes = 0;
  int search_stages = 0;
  // Zone-partitioned solve accounting (zone_count stays 0 for global
  // solves). With zoning, per-flow delay_bound_met is reported but not
  // enforced — see plan().
  int zone_count = 0;
  int border_links = 0;
  int relocated_border_links = 0;
  std::vector<int> zone_slots;  // phase-1 schedule length per zone

  // Next hop of flow `flow_id` at node `at`, or kInvalidNode.
  NodeId next_hop(int flow_id, NodeId at) const;
  // LinkId of flow's hop out of `at`, or kInvalidLink.
  LinkId out_link(int flow_id, NodeId at) const;
  const FlowPlan* find_flow(int flow_id) const;
};

class QosPlanner {
 public:
  // `radio_env`, when non-null, replaces the protocol conflict graph with
  // the SINR-derived one (build_conflict_graph_sinr) in every problem this
  // planner builds. The environment must outlive the planner. Routing and
  // demand sizing are unchanged — the physical layer only decides which
  // link pairs may share a slot.
  QosPlanner(const Topology& topology, const RadioModel& radio,
             EmulationParams params, PhyMode phy,
             RoutingPolicy routing = RoutingPolicy::kHopCount,
             const radio::RadioEnvironment* radio_env = nullptr);

  // Routes every flow, sizes per-link guaranteed demands and builds the
  // conflict graph — steps 1–3 of plan(), without solving anything.
  // Deterministic in (topology, flows): guaranteed flows are routed first
  // (declaration order within a class), so the same flow list always
  // yields the same problem regardless of who asks.
  BuiltProblem build_problem(const std::vector<FlowSpec>& flows) const;

  // Plans all flows at once. Fails if the guaranteed class cannot be
  // scheduled within the data subframe or a delay bound cannot be met.
  //
  // When `zoned` is non-null (and the kind is one of the ILP schedulers
  // with the min-slots objective), the guaranteed class is scheduled with
  // the zone-partitioned solver (wimesh::zones) instead of one global
  // search: zones solve in parallel, border links reconcile
  // deterministically, and the plan carries the zone accounting fields.
  // Zoning trades the global delay-optimality proof for scale, so missed
  // delay bounds are then reported per flow instead of failing the plan.
  Expected<MeshPlan> plan(
      const std::vector<FlowSpec>& flows, SchedulerKind kind,
      const IlpSchedulerOptions& ilp_options = {},
      PlanObjective objective = PlanObjective::kMinimizeSlots,
      const zones::ZoneOptions* zoned = nullptr) const;

  // Largest number of flow sets admissible: convenience incremental
  // admission — returns the plan for the longest feasible prefix of
  // `flows` (guaranteed flows only gate admission; best-effort always
  // fits by shrinking).
  struct AdmissionResult {
    MeshPlan plan;          // plan over the admitted prefix
    std::size_t admitted;   // how many specs from the front were admitted
  };
  AdmissionResult admit_incrementally(
      const std::vector<FlowSpec>& flows, SchedulerKind kind,
      const IlpSchedulerOptions& ilp_options = {}) const;

  const EmulationParams& params() const { return params_; }
  const PhyMode& phy() const { return phy_; }

 private:
  // `link_load` carries the airtime (seconds/frame) already reserved per
  // directed link during this planning pass; only kLoadAware reads it.
  std::vector<NodeId> route(
      NodeId src, NodeId dst,
      const std::vector<std::vector<double>>& link_load) const;

  const Topology& topology_;
  RadioModel radio_;
  EmulationParams params_;
  PhyMode phy_;
  RoutingPolicy routing_;
  const radio::RadioEnvironment* radio_env_ = nullptr;
};

}  // namespace wimesh
