#pragma once

// Call-level admission dynamics.
//
// The packet-level simulations hold the flow set fixed; this module models
// the telephony layer above it: VoIP calls arrive as a Poisson process,
// hold for an exponential time, and each arrival triggers the centralized
// admission control (re-planning the schedule over active + candidate
// calls). The classic output is the blocking probability vs offered load
// (Erlangs) — how much real call traffic the mesh carries at a given
// grade of service, and how much of that capacity the scheduler choice
// buys (experiment R-F9).
//
// Calls are admitted atomically (both directions or neither). Planning
// uses the cheap feasibility objective; a production system would also
// reuse the incumbent schedule, which this model conservatively does not.

#include <cstdint>
#include <vector>

#include "wimesh/metrics/stats.h"
#include "wimesh/qos/planner.h"

namespace wimesh {

struct CallDynamicsConfig {
  // Poisson call arrival rate (calls per second) and mean holding time;
  // offered load in Erlangs = arrival_rate * mean_holding.
  double arrival_rate_per_s = 0.1;
  double mean_holding_s = 120.0;
  SimTime horizon = SimTime::seconds(3600);
  VoipCodec codec = VoipCodec::g729();
  SimTime max_delay = SimTime::milliseconds(100);
  // Call endpoints are drawn uniformly from this list per arrival.
  std::vector<std::pair<NodeId, NodeId>> endpoints;
  SchedulerKind scheduler = SchedulerKind::kIlpDelayAware;
  IlpSchedulerOptions ilp;
  std::uint64_t seed = 1;
};

struct CallDynamicsResult {
  int offered = 0;
  int admitted = 0;
  int blocked = 0;
  // Time-average number of simultaneously active calls (carried load).
  double mean_carried_calls = 0.0;
  int peak_carried_calls = 0;
  // Planner invocations (each arrival costs one).
  int plans_attempted = 0;
  // Wall-clock latency of each admission decision (one sample per offered
  // call), in nanoseconds. Reporting only — never feeds back into the
  // simulation, so results stay deterministic in the seed.
  SampleSet decision_latency_ns;

  double offered_load_erlangs(const CallDynamicsConfig& cfg) const {
    return cfg.arrival_rate_per_s * cfg.mean_holding_s;
  }
  double blocking_probability() const {
    return offered == 0 ? 0.0
                        : static_cast<double>(blocked) /
                              static_cast<double>(offered);
  }
};

// Runs the call-level simulation (no packet-level traffic — admission
// decisions only, so hour-long horizons run in seconds).
CallDynamicsResult simulate_call_dynamics(const Topology& topology,
                                          const RadioModel& radio,
                                          const EmulationParams& params,
                                          const PhyMode& phy,
                                          const CallDynamicsConfig& config);

}  // namespace wimesh
