#pragma once

// Flow specifications for the multi-service mesh: guaranteed-QoS flows
// (VoIP-class CBR with an end-to-end delay bound) and best-effort flows
// served from leftover minislots.

#include <cstdint>
#include <string>

#include "wimesh/common/time.h"
#include "wimesh/graph/graph.h"
#include "wimesh/traffic/sources.h"

namespace wimesh {

enum class ServiceClass { kGuaranteed, kBestEffort };

// What the packet generator looks like at runtime. Capacity reservation
// always uses (packet_bytes, packet_interval) as the average-rate
// envelope; shapes other than CBR may burst above it and queue.
enum class TrafficShape { kCbr, kPoisson, kVbrVideo };

struct FlowSpec {
  int id = -1;
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  ServiceClass service = ServiceClass::kGuaranteed;
  TrafficShape shape = TrafficShape::kCbr;

  // Traffic envelope. Guaranteed flows are CBR (VoIP); best-effort flows
  // use the same fields as a target average rate.
  std::size_t packet_bytes = 0;
  SimTime packet_interval{};

  // VBR video profile knobs (used when shape == kVbrVideo).
  int video_gop = 12;
  double video_intra_scale = 2.5;

  // End-to-end delay bound; guaranteed flows only.
  SimTime max_delay = SimTime::milliseconds(100);

  double rate_bps() const {
    return static_cast<double>(packet_bytes) * 8.0 /
           packet_interval.to_seconds();
  }

  // A bidirectional VoIP call is two such flows (one each way).
  static FlowSpec voip(int id, NodeId src, NodeId dst, const VoipCodec& codec,
                       SimTime max_delay = SimTime::milliseconds(100));

  static FlowSpec best_effort(int id, NodeId src, NodeId dst,
                              std::size_t packet_bytes, double rate_bps);

  // Streaming video with an average-rate reservation (rtPS-style): the
  // guaranteed class reserves `mean_rate_bps`; I-frame bursts above the
  // reservation ride the queue. `mtu` bounds on-air packet size.
  static FlowSpec video(int id, NodeId src, NodeId dst, double mean_rate_bps,
                        std::size_t mtu = 1200,
                        SimTime max_delay = SimTime::milliseconds(200));
};

}  // namespace wimesh
