#pragma once

// wimesh::trace — deterministic event tracing + wall-clock profiling.
//
// A Tracer owns a preallocated ring of fixed-size binary records. Every
// record carries a *virtual* (DES) timestamp, so two runs of the same
// scenario produce bit-identical event streams regardless of wall-clock
// speed or which worker thread executed them. Profiling spans additionally
// carry monotonic wall-clock totals, which are reported only in the
// human-facing span summary (never in the deterministic JSON export).
//
// Instrumentation sites call the free helpers below; they are compiled in
// unconditionally but cost a single thread-local load plus one predicted
// branch when no Tracer is bound to the calling thread. Binding is by RAII
// Scope — the batch runner binds a per-run Tracer around each run's body,
// and since a run executes entirely on one worker thread its trace is
// independent of thread placement.
//
// Ring overflow overwrites the oldest records and counts them (dropped());
// exporters report the count so truncation is never silent.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "wimesh/common/time.h"

namespace wimesh::trace {

// Category bitmask — filters which instrumentation sites record.
enum Category : std::uint32_t {
  kDes = 1u << 0,     // DES event dispatch
  kTdma = 1u << 1,    // frame boundaries, grant blocks, hot-swaps
  kWifi = 1u << 2,    // channel transmissions and corruption causes
  kSync = 1u << 3,    // beacon waves, re-roots, master failures
  kFaults = 1u << 4,  // fault injection / recovery phases
  kProf = 1u << 5,    // wall-clock profiling spans
  kIlp = 1u << 6,     // ILP solver internals (cuts, portfolio, warm starts)
  kAdmit = 1u << 7,   // online admission control (decisions, hot-swaps)
  kZones = 1u << 8,   // zone partitioning / per-zone solves / border pass
  kChaos = 1u << 9,   // chaos fuzzing trials / oracle checks / shrinking
  kRadio = 1u << 10,  // physical layer: deep fades, capture, rate switches
  kAll = (1u << 11) - 1,
};

// Parses a comma-separated category list ("tdma,sync"). "all" and "on"
// select everything, "off"/"none" select nothing. Unknown names return 0
// and set *error (when given) to a message naming the bad token.
std::uint32_t parse_categories(const std::string& csv,
                               std::string* error = nullptr);
const char* category_name(Category cat);

enum class EventType : std::uint16_t {
  kDesDispatch = 0,   // a=event id
  kFrameStart,        // node, a=frame index
  kBlockStart,        // node, a=link, b=slot start, c=slot length, d=frame
  kBlockSkipped,      // node, a=link (channel busy at slot start)
  kGrantSwap,         // node, a=new plan generation, b=frame index
  kTxStart,           // node=tx, a=to, b=frame kind, c=airtime ns, d=bytes
  kRxCorrupted,       // node=rx, a=from, b=cause (RxDropCause)
  kSyncWave,          // node=master, a=wave number, b=max depth
  kSyncReRoot,        // node=new master, a=max depth
  kSyncMasterFail,    // node=old master
  kFaultApplied,      // node, a=FaultKind
  kRecoveryStart,     // a=faults handled so far
  kScheduleRepaired,  // a=repairs, b=flows shed, c=activation frame
  kPlanActivated,     // a=activation frame
  kSpan,              // profiling span: name field, a=wall total ns,
                      // b=wall self ns, [t0,t1] = virtual range
  // ILP solver internals (appended after kSpan to keep earlier numeric
  // values stable for existing exports).
  kIlpCuts,           // a=cut rows added, b=cliques used, c=root lower bound
  kIlpPortfolio,      // a=strategy index, b=nodes explored, c=rounds,
                      // d=1 when this strategy produced the returned result
  kIlpWarmStart,      // a=warm-start hits, b=attempts (per solve)
  kIlpTreeFastPath,   // a=active links, b=slots used, c=forest components
  // Online admission control (appended to keep earlier values stable).
  kAdmitDecision,     // a=flow id, b=outcome (0 admit/1 degrade/2 reject),
                      // c=decision path (admit::DecisionPath), d=active flows
  kAdmitRelease,      // a=flow id, b=active flows, c=departures pending
  kAdmitHotSwap,      // a=plan generation, b=activation frame, c=used slots
  kAdmitCompaction,   // a=surviving flows, b=used slots after compaction
  // Zone-partitioned scheduling (appended to keep earlier values stable).
  kZonePartition,     // a=zones, b=nodes, c=border links, d=interior links
  kZoneSolve,         // a=zone index, b=zone links, c=zone slots,
                      // d=1 when the zone solve was proven minimal
  kZoneBorder,        // a=border link id, b=granted slot start,
                      // c=slot length, d=1 when relocated from the
                      // zone-local request
  // Partition-aware recovery (appended to keep earlier values stable).
  kIslandsFormed,     // a=island count, b=surviving nodes, c=severed flows
  kIslandMaster,      // node=island master, a=island index, b=island size
  kIslandsHealed,     // a=islands merged, b=flows re-admitted
  // Chaos fuzzing engine (appended to keep earlier values stable).
  kChaosTrial,        // a=trial index, b=events in script, c=0 ok / 1 failed
  kChaosShrink,       // a=shrink round, b=events remaining, c=events removed
  // Physical radio layer (appended to keep earlier values stable).
  kRadioFadeDeep,     // node=rx, a=tx, b=fading gain in centi-dB (<= -1000)
  kRadioCapture,      // node=rx, a=tx, b=SINR centi-dB, c=interferers
  kRadioRateSwitch,   // node=tx, a=rx, b=new best rate index, c=rate Mbps
};
const char* event_type_name(EventType type);
Category event_category(EventType type);

// Cause codes for kRxCorrupted (stable — documented in EXPERIMENTS.md).
enum class RxDropCause : std::int64_t {
  kCollision = 1,   // another transmission overlapped the reception
  kHalfDuplex = 2,  // the receiving radio was itself transmitting
  kImpairment = 3,  // injected link fault corrupted the frame
  kPer = 4,         // Bernoulli packet-error-rate drop
  kSinr = 5,        // SINR below the capture threshold (physical radio)
};

enum class SpanName : std::uint16_t {
  kIlpSolve = 0,    // branch-and-bound over one IlpModel
  kScheduleIlp,     // sched::schedule_ilp (heuristics + root LP + B&B)
  kMinSlotsSearch,  // sched::min_slots_search
  kBellmanFord,     // sched::order_to_schedule slot assignment
  kQosPlan,         // QosPlanner::plan end to end
  kFaultRecovery,   // fault detection -> repaired plan activation
  kSimRun,          // DES main loop for one run
  kBatchRun,        // one batch run body (plan + simulate)
  kIlpCutGen,       // clique-cut generation over the conflict graph
  kTreeFastPath,    // forest detection + Bellman-Ford tree scheduling
  kAdmitDecide,     // AdmissionEngine::offer end to end
  kAdmitCompact,    // survivor re-plan + hot-swap staging
  kZoneSolve,       // one zone's min-slot search (phase 1)
  kZoneCompose,     // border reconciliation + composition (phase 2)
  kCount,
};
const char* span_name(SpanName name);

// One fixed-size binary record (56 bytes; ring stays cache-friendly).
struct Record {
  SimTime t0{};  // virtual timestamp; spans: virtual begin
  SimTime t1{};  // spans: virtual end; instant events: == t0
  EventType type = EventType::kDesDispatch;
  std::uint16_t name = 0;  // SpanName for kSpan records
  std::int32_t node = -1;  // acting node, -1 = global
  std::int64_t a = 0;
  std::int64_t b = 0;
  std::int64_t c = 0;
  std::int64_t d = 0;
};
static_assert(sizeof(Record) <= 64, "Record must stay ring-friendly");

struct TraceConfig {
  std::uint32_t categories = kAll;
  std::size_t capacity = std::size_t{1} << 16;  // records (64 B each)
};

class Tracer {
 public:
  explicit Tracer(TraceConfig config = {});

  bool wants(Category cat) const { return (config_.categories & cat) != 0; }

  // Appends when the category is enabled; wraps over the oldest record
  // when the ring is full (counted in dropped()).
  void record(Category cat, const Record& r);

  // Span bookkeeping: push on span entry, pop on exit. Pop subtracts the
  // accumulated child wall time to produce the span's self time and emits
  // a kSpan record.
  void span_push();
  void span_pop(SpanName name, SimTime vt0, SimTime vt1,
                std::int64_t wall_total_ns);

  // Retained records, oldest first.
  std::vector<Record> snapshot() const;
  std::uint64_t recorded() const { return recorded_; }
  std::uint64_t dropped() const { return dropped_; }
  // Same counters restricted to a category mask. The deterministic JSON
  // export reports recorded_in(kAll & ~kProf): wall-clock span counts are
  // thread-timing dependent under a shared schedule cache, so including
  // them would break byte-identity across --jobs values.
  std::uint64_t recorded_in(std::uint32_t mask) const;
  std::uint64_t dropped_in(std::uint32_t mask) const;
  const TraceConfig& config() const { return config_; }

 private:
  static constexpr std::size_t kCategoryCount = 11;

  TraceConfig config_;
  std::vector<Record> ring_;
  std::size_t head_ = 0;        // next write slot
  std::uint64_t recorded_ = 0;  // records accepted (incl. later overwritten)
  std::uint64_t dropped_ = 0;   // records overwritten by ring wrap
  std::uint64_t recorded_by_cat_[kCategoryCount] = {};
  std::uint64_t dropped_by_cat_[kCategoryCount] = {};
  std::vector<std::int64_t> span_child_wall_;  // per-depth child accumulator
};

namespace detail {
inline thread_local Tracer* tls_tracer = nullptr;
}

// The Tracer bound to this thread, or nullptr when tracing is off.
inline Tracer* current() { return detail::tls_tracer; }

// Binds a Tracer to the calling thread for the Scope's lifetime. Passing
// nullptr is allowed and leaves tracing off (convenient at call sites).
class Scope {
 public:
  explicit Scope(Tracer* tracer) : prev_(detail::tls_tracer) {
    detail::tls_tracer = tracer;
  }
  ~Scope() { detail::tls_tracer = prev_; }
  Scope(const Scope&) = delete;
  Scope& operator=(const Scope&) = delete;

 private:
  Tracer* prev_;
};

// Instrumentation-site helper. Disabled cost: one thread-local load and a
// predicted-not-taken branch (argument expressions stay trivial at sites).
inline void event(EventType type, SimTime t, std::int32_t node = -1,
                  std::int64_t a = 0, std::int64_t b = 0, std::int64_t c = 0,
                  std::int64_t d = 0) {
  Tracer* tracer = current();
  if (tracer == nullptr) [[likely]] {
    return;
  }
  Record r;
  r.t0 = t;
  r.t1 = t;
  r.type = type;
  r.node = node;
  r.a = a;
  r.b = b;
  r.c = c;
  r.d = d;
  tracer->record(event_category(type), r);
}

// Monotonic wall clock in nanoseconds (std::chrono::steady_clock).
std::int64_t monotonic_ns();

// RAII profiling span (category kProf). The virtual range defaults to
// [vt, vt]; widen it with set_virtual_range() before destruction when the
// span covers simulated time (e.g. fault -> repaired-plan activation).
class Span {
 public:
  explicit Span(SpanName name, SimTime vt = SimTime::zero())
      : tracer_(current()), name_(name), vt0_(vt), vt1_(vt) {
    if (tracer_ == nullptr) [[likely]] {
      return;
    }
    if (!tracer_->wants(kProf)) {
      tracer_ = nullptr;
      return;
    }
    tracer_->span_push();
    wall_begin_ns_ = monotonic_ns();
  }
  ~Span() {
    if (tracer_ == nullptr) [[likely]] {
      return;
    }
    tracer_->span_pop(name_, vt0_, vt1_, monotonic_ns() - wall_begin_ns_);
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  void set_virtual_range(SimTime begin, SimTime end) {
    vt0_ = begin;
    vt1_ = end;
  }

 private:
  Tracer* tracer_;
  SpanName name_;
  SimTime vt0_;
  SimTime vt1_;
  std::int64_t wall_begin_ns_ = 0;
};

}  // namespace wimesh::trace
