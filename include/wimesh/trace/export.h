#pragma once

// Trace exporters.
//
// to_chrome_json renders the Chrome trace-event format understood by
// Perfetto and chrome://tracing. It serializes ONLY virtual-time event
// records: profiling spans (category "prof") are excluded by design,
// because with a shared ScheduleCache *which* run performs a solve — and
// thus records its span — depends on thread scheduling. Skipping them
// keeps the exported bytes bit-identical for any --jobs value. Wall-clock
// data is reported instead through span_summary(), a human-facing table.

#include <string>
#include <vector>

#include "wimesh/trace/trace.h"

namespace wimesh::trace {

struct ExportOptions {
  // Perfetto process id / label for this trace (e.g. the run index and
  // the sweep label). Events are split into per-node tracks (tid).
  std::int64_t pid = 0;
  std::string process_label;
};

// Chrome trace-event JSON ({"traceEvents":[...]}); oldest record first.
// otherData carries recorded/dropped counts so ring overflow is visible
// in the file itself. The counts cover the exported (non-prof)
// categories only — like the events themselves, they must not depend on
// which thread performed a cached solve.
std::string to_chrome_json(const Tracer& tracer,
                           const ExportOptions& opts = {});

// Per-frame slot timeline: one CSV row per TDMA grant block release
// (frame, node, link, slot_start, slot_len, fire_ms) plus skipped blocks
// with slot_len 0.
std::string to_slot_csv(const Tracer& tracer);

// Aligned table of wall-clock span totals/self times aggregated by span
// name across the given tracers (rows in fixed SpanName order).
std::string span_summary(const std::vector<const Tracer*>& tracers);
std::string span_summary(const Tracer& tracer);

}  // namespace wimesh::trace
