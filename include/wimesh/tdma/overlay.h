#pragma once

// TDMA-over-WiFi overlay — the paper's primary system contribution.
//
// Each node runs a software slotter above its (zero-backoff) 802.11 MAC:
// an 802.16-mesh-style frame is laid over time, the node holds one packet
// queue per outgoing scheduled link, and at the start of each granted
// minislot block — per its own, drifting, periodically-resynced clock — it
// releases exactly as many packets to the MAC as provably fit in the block
// minus the guard time. Because the schedule is conflict-free and sync
// error is absorbed by the guard, the MAC sees an idle medium and transmits
// back-to-back with deterministic per-packet cost.
//
// The release sizing assumes one attempt per packet. On a physical channel
// (fading, SINR) receptions can corrupt, and an unchecked MAC retry would
// spill transmissions past the block into slots granted to other nodes. The
// slotter therefore arms the MAC's release deadline at every block start
// (block end minus the guard); attempts that cannot complete by it are not
// started, and the packets the MAC still holds come back to the front of
// their link queue to be re-released in a later block.

#include <cstdint>
#include <deque>
#include <functional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "wimesh/sync/sync.h"
#include "wimesh/wifi/dcf_mac.h"
#include "wimesh/wimax/mesh_frame.h"

namespace wimesh {

// Emulation-wide timing parameters.
struct EmulationParams {
  FrameConfig frame;
  SimTime guard_time = SimTime::microseconds(50);
};

// Packets of `payload_bytes` that fit a block of `block_slots` minislots,
// after the guard, at deterministic overlay service cost.
int packets_per_block(const EmulationParams& params, const PhyMode& phy,
                      int block_slots, std::size_t payload_bytes);

// Smallest block (in minislots) that carries `packets` packets of
// `payload_bytes` per frame; returns -1 if no block within the data
// subframe suffices.
int block_for_packets(const EmulationParams& params, const PhyMode& phy,
                      int packets, std::size_t payload_bytes);

// Fraction of the nominal PHY bitrate the emulation delivers on one link
// granted the whole data subframe (the efficiency the overhead experiment
// sweeps).
double emulation_efficiency(const EmulationParams& params, const PhyMode& phy,
                            std::size_t payload_bytes);

// One node's slotter.
class TdmaOverlayNode {
 public:
  struct TxGrant {
    LinkId link = kInvalidLink;
    NodeId neighbor = kInvalidNode;  // the link's receiver
    SlotRange range;
  };

  // Observation hooks for events the counters alone cannot attribute
  // (which packet was dropped, which block was skipped). Optional; used by
  // the runtime invariant auditor.
  struct Hooks {
    std::function<void(NodeId, LinkId, const MacPacket&)> on_best_effort_drop;
    std::function<void(NodeId, LinkId)> on_block_skipped;
    // A queued packet was discarded because a schedule hot-swap revoked its
    // link (the repaired plan no longer serves that neighbor from here).
    std::function<void(NodeId, LinkId, const MacPacket&)> on_revoked_drop;
  };

  TdmaOverlayNode(Simulator& sim, DcfMac& mac, const SyncProtocol& sync,
                  NodeId self, EmulationParams params);

  // Installs this node's transmit grants (links with link.from == self).
  void set_grants(std::vector<TxGrant> grants);

  // Stages a replacement grant set (and guard) adopted atomically at the
  // top of frame `activation_frame`'s slot loop — i.e. exactly on a frame
  // boundary, before any of that frame's blocks fire. Queued packets
  // migrate to the new link serving the same neighbor; packets whose
  // neighbor the new plan no longer serves from this node are discarded
  // through on_revoked_drop. Grant link ids refer to the *new* plan's link
  // set; enqueue() switches meaning at adoption.
  void stage_grants(std::int64_t activation_frame, std::vector<TxGrant> grants,
                    SimTime guard);

  // Fault injection: a disabled (crashed) node stops releasing packets at
  // its block starts; its queues freeze until re-enabled.
  void set_enabled(bool enabled) { enabled_ = enabled; }

  void set_hooks(Hooks hooks) { hooks_ = std::move(hooks); }

  // Starts the per-frame slot loop; frames begin at global t = 0.
  void start(SimTime stop);

  // Queues a packet for transmission on one of this node's granted links.
  // Guaranteed-class packets are served with strict priority inside every
  // block, so saturating best-effort load cannot starve them; best-effort
  // queues are drop-tail bounded. Returns false — without queuing — when
  // this node holds no grant for `link`, which can only happen in the
  // one-instant window of a schedule hot-swap (caller accounts the drop).
  bool enqueue(LinkId link, MacPacket packet, bool guaranteed = true);

  std::size_t queue_length(LinkId link) const;
  std::size_t total_queued() const;
  std::uint64_t best_effort_drops() const { return best_effort_drops_; }

  // Times the slotter found the MAC still busy at a block start (should be
  // zero when guard/schedule are dimensioned correctly).
  std::uint64_t busy_at_slot_start() const { return busy_at_slot_start_; }
  std::uint64_t packets_released() const { return packets_released_; }
  // Released packets the MAC handed back because its retries ran out of
  // block budget (nonzero only on lossy physical channels).
  std::uint64_t deadline_requeues() const { return deadline_requeues_; }

 private:
  void schedule_frame(std::int64_t frame_index, SimTime stop);
  void on_block_start(const TxGrant& grant, std::int64_t frame_index);
  void on_deadline_requeue(const std::vector<MacPacket>& returned);
  void adopt_staged();

  struct LinkQueues {
    std::deque<MacPacket> guaranteed;
    std::deque<MacPacket> best_effort;
  };
  struct StagedGrants {
    std::int64_t activation_frame = 0;
    std::vector<TxGrant> grants;
    SimTime guard{};
    bool pending = false;
  };

  Simulator& sim_;
  DcfMac& mac_;
  const SyncProtocol& sync_;
  NodeId self_;
  EmulationParams params_;
  Hooks hooks_;
  std::vector<TxGrant> grants_;
  StagedGrants staged_;
  // Bumped at every hot-swap; block events carry the generation they were
  // scheduled under and fizzle if a swap intervened (LinkIds are
  // plan-relative, so a stale event must not touch new-plan queues).
  std::uint64_t plan_generation_ = 0;
  bool enabled_ = true;
  std::unordered_map<LinkId, LinkQueues> queues_;
  std::size_t best_effort_queue_cap_ = 256;
  // Ids of best-effort packets currently released to the MAC, so a deadline
  // requeue restores each packet to its service class. Cleared at every
  // block start (the MAC is verifiably empty there).
  std::unordered_set<std::uint64_t> released_best_effort_;
  std::uint64_t busy_at_slot_start_ = 0;
  std::uint64_t packets_released_ = 0;
  std::uint64_t best_effort_drops_ = 0;
  std::uint64_t deadline_requeues_ = 0;
};

}  // namespace wimesh
