#pragma once

// Discrete-event simulation kernel.
//
// A single-threaded event queue with integer-nanosecond timestamps and FIFO
// tie-breaking, so runs are deterministic given the same inputs. All MAC,
// traffic and synchronization models in this repo are processes driven by
// this kernel.
//
// Two interchangeable event structures sit behind the same Simulator API:
//
//  * kCalendarQueue (default) — a Brown calendar queue: events hash into
//    time-bucketed "days" of an adaptively sized "year", giving O(1)
//    amortized insert/extract under the steady event populations a
//    city-scale mesh produces (every node contributes frame-periodic
//    events, so the population is large and the inter-event gap stable —
//    the calendar's best case).
//  * kBinaryHeap — the original std::priority_queue kernel, retained as a
//    fallback and as the reference implementation for differential tests.
//
// Both structures order events by (time, insertion sequence), so the event
// order — and therefore every simulation result — is bit-identical between
// them (proven by des_test's differential stress and the golden
// scale-equivalence suite).

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "wimesh/common/assert.h"
#include "wimesh/common/time.h"

namespace wimesh {

// Identifies a scheduled event so it can be cancelled. Handles are never
// reused within one Simulator.
struct EventHandle {
  std::uint64_t id = 0;
  bool valid() const { return id != 0; }
};

// Which event structure a Simulator runs on (see file comment).
enum class EventQueueKind {
  kCalendarQueue,
  kBinaryHeap,
};

namespace detail {

// One queued event. Ordered by (time, seq): seq gives FIFO order among
// same-time events.
struct DesEntry {
  SimTime time;
  std::uint64_t seq = 0;
  std::uint64_t id = 0;

  friend bool operator>(const DesEntry& a, const DesEntry& b) {
    if (a.time != b.time) return a.time > b.time;
    return a.seq > b.seq;
  }
  friend bool operator<(const DesEntry& a, const DesEntry& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.seq < b.seq;
  }
};

// Brown's calendar queue (Brown 1988): buckets of width `width_` ns cover
// one "year" of nbuckets_ * width_ ns; an event at time t lands in bucket
// (t / width) % nbuckets. Extract-min sweeps forward from the current
// bucket, considering only events inside the bucket's current year; a
// fruitless full sweep falls back to a direct search (events far in the
// future). The bucket count doubles/halves with the population and the
// width re-derives from the live events' spread, keeping buckets near one
// event each. Buckets are kept sorted ascending so the front is the bucket
// minimum and equal-time FIFO order is preserved.
class CalendarQueue {
 public:
  CalendarQueue();

  void push(const DesEntry& e);
  DesEntry pop_min();
  // Time of the minimum entry without removing it. Like pop_min, requires
  // a non-empty queue; repositions the internal cursor (not logically
  // observable).
  SimTime min_time();
  bool empty() const { return count_ == 0; }
  std::size_t size() const { return count_; }

 private:
  std::size_t bucket_of(std::int64_t t) const {
    return static_cast<std::size_t>(t / width_) & (buckets_.size() - 1);
  }
  // Positions cursor_/cursor_top_ so the global minimum entry sits at the
  // front of buckets_[cursor_]. Requires count_ > 0.
  void locate_min();
  void resize(std::size_t nbuckets);

  std::vector<std::vector<DesEntry>> buckets_;  // each sorted ascending
  std::int64_t width_ = 1;      // bucket width, ns (>= 1)
  std::size_t count_ = 0;       // total queued entries
  std::size_t cursor_ = 0;      // bucket the sweep resumes from
  std::int64_t cursor_top_ = 0; // exclusive time bound of cursor_'s year
};

}  // namespace detail

class Simulator {
 public:
  using EventFn = std::function<void()>;

  explicit Simulator(EventQueueKind queue_kind = EventQueueKind::kCalendarQueue)
      : queue_kind_(queue_kind) {}
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime now() const { return now_; }
  EventQueueKind queue_kind() const { return queue_kind_; }

  // Schedules fn at absolute time t (must not be in the past).
  EventHandle schedule_at(SimTime t, EventFn fn);

  // Schedules fn `delay` after now. A negative delay is a caller bug and
  // is rejected here by name (not by schedule_at's past-check, whose
  // message would blame the wrong API).
  EventHandle schedule_in(SimTime delay, EventFn fn) {
    WIMESH_ASSERT_MSG(delay >= SimTime::zero(),
                      "schedule_in requires a non-negative delay");
    return schedule_at(now_ + delay, std::move(fn));
  }

  // Cancels a pending event; cancelling an already-fired or already-
  // cancelled event is a harmless no-op.
  void cancel(EventHandle h);

  // Runs until the queue drains or `horizon` is reached (events at exactly
  // `horizon` are executed). The clock ends at min(horizon, last event).
  void run_until(SimTime horizon);

  // Runs until the queue drains completely.
  void run_all();

  // Requests that the run loop stop after the current event returns.
  void stop() { stop_requested_ = true; }

  std::uint64_t events_executed() const { return events_executed_; }
  std::size_t pending_events() const {
    return queue_size() - cancelled_.size();
  }

 private:
  void execute_next();
  void queue_push(const detail::DesEntry& e);
  detail::DesEntry queue_pop();
  SimTime queue_min_time();
  bool queue_empty() const;
  std::size_t queue_size() const;

  SimTime now_ = SimTime::zero();
  std::uint64_t next_seq_ = 0;
  std::uint64_t next_id_ = 1;
  std::uint64_t events_executed_ = 0;
  bool stop_requested_ = false;
  EventQueueKind queue_kind_;
  detail::CalendarQueue calendar_;
  std::priority_queue<detail::DesEntry, std::vector<detail::DesEntry>,
                      std::greater<>>
      heap_;
  std::unordered_map<std::uint64_t, EventFn> handlers_;
  std::unordered_set<std::uint64_t> cancelled_;
};

}  // namespace wimesh
