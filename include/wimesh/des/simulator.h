#pragma once

// Discrete-event simulation kernel.
//
// A single-threaded event queue with integer-nanosecond timestamps and FIFO
// tie-breaking, so runs are deterministic given the same inputs. All MAC,
// traffic and synchronization models in this repo are processes driven by
// this kernel.

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "wimesh/common/assert.h"
#include "wimesh/common/time.h"

namespace wimesh {

// Identifies a scheduled event so it can be cancelled. Handles are never
// reused within one Simulator.
struct EventHandle {
  std::uint64_t id = 0;
  bool valid() const { return id != 0; }
};

class Simulator {
 public:
  using EventFn = std::function<void()>;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime now() const { return now_; }

  // Schedules fn at absolute time t (must not be in the past).
  EventHandle schedule_at(SimTime t, EventFn fn);

  // Schedules fn `delay` after now (delay >= 0).
  EventHandle schedule_in(SimTime delay, EventFn fn) {
    return schedule_at(now_ + delay, std::move(fn));
  }

  // Cancels a pending event; cancelling an already-fired or already-
  // cancelled event is a harmless no-op.
  void cancel(EventHandle h);

  // Runs until the queue drains or `horizon` is reached (events at exactly
  // `horizon` are executed). The clock ends at min(horizon, last event).
  void run_until(SimTime horizon);

  // Runs until the queue drains completely.
  void run_all();

  // Requests that the run loop stop after the current event returns.
  void stop() { stop_requested_ = true; }

  std::uint64_t events_executed() const { return events_executed_; }
  std::size_t pending_events() const { return queue_.size() - cancelled_.size(); }

 private:
  struct Entry {
    SimTime time;
    std::uint64_t seq;  // FIFO order among same-time events
    std::uint64_t id;
    // Ordering for a min-heap via std::greater.
    friend bool operator>(const Entry& a, const Entry& b) {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  void execute_next();

  SimTime now_ = SimTime::zero();
  std::uint64_t next_seq_ = 0;
  std::uint64_t next_id_ = 1;
  std::uint64_t events_executed_ = 0;
  bool stop_requested_ = false;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> queue_;
  std::unordered_map<std::uint64_t, EventFn> handlers_;
  std::unordered_set<std::uint64_t> cancelled_;
};

}  // namespace wimesh
