#pragma once

// wimesh::chaos — seeded randomized fault/churn fuzzing for the recovery
// and admission paths.
//
// Each trial derives everything from (seed, trial index): a topology drawn
// from the chain / grid / tree families, a set of VoIP calls, a fault
// script (crashes, recoveries, link outages, master failure, PER bursts,
// clock steps) that is consistent by construction, and a Poisson admission
// churn. The trial then runs two independent legs:
//
//   * Packet leg — the full MeshNetwork simulation with auditing on and
//     the script installed. Checked: zero audit violations outside waived
//     fault windows, and every recovery pass's recorded partition outcome
//     (FaultReport::repair_history) against an independent connectivity
//     oracle that replays the script with plain BFS — island count, per-
//     island master validity, severed-flow count and the peak island count
//     must all match.
//   * Control leg — an AdmissionEngine fed the same structural events as
//     topology epochs, interleaved with churn arrivals/departures.
//     Checked: every arrival's typed decision against what the epoch
//     state implies (dead endpoint -> endpoint_down, severed route ->
//     no_route, otherwise never liveness-rejected), and live_consistent()
//     after every event.
//
// On the first failing trial the fuzzer shrinks the fault script with a
// ddmin-style pass — repeatedly re-running the trial with one event
// removed, keeping every removal that still reproduces — and reports the
// minimal script. `inject_recover_loss_bug` is a test fixture that drops
// node-recover events from the system-side plan (the oracle still sees
// them), emulating a lost recovery notification; the fuzzer must catch it
// and shrink the reproducer to a handful of events.
//
// Determinism: a ChaosReport is a pure function of ChaosOptions. Trials
// run sequentially; per-trial RNG streams are derived, never shared.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "wimesh/faults/plan.h"
#include "wimesh/qos/planner.h"

namespace wimesh::chaos {

struct ChaosOptions {
  std::uint64_t seed = 1;
  // Stop once this many fault + churn events have been exercised (or on
  // the first failure). `max_trials` is a hard cap against degenerate
  // option combinations.
  std::uint64_t event_budget = 10000;
  std::uint64_t max_trials = 100000;
  // Scheduler used by both legs. The default keeps 10k-event smokes fast;
  // the ILP kinds exercise the same recovery machinery at higher cost.
  SchedulerKind scheduler = SchedulerKind::kGreedy;
  // Failure-detection delay for generated fault plans, milliseconds.
  // Events are spaced 100 ms apart, so any value < 100 keeps recovery
  // points unambiguous.
  int detect_ms = 50;
  // Test fixture: drop node-recover events from the system-side plan while
  // the oracle replays the full script (a deliberately injected bug the
  // fuzzer must catch and shrink).
  bool inject_recover_loss_bug = false;
};

// The minimal reproducing script for the first failure, after shrinking.
struct TrialFailure {
  std::uint64_t trial = 0;
  std::string family;                       // "chain-6", "grid-4x4", ...
  std::string detail;                       // first check that failed
  std::vector<faults::FaultEvent> script;   // minimized
  std::size_t original_events = 0;          // script size before shrinking
  int shrink_rounds = 0;                    // successful removals
};

struct ChaosReport {
  std::uint64_t trials = 0;
  std::uint64_t events = 0;        // fault + churn events exercised
  std::uint64_t fault_events = 0;
  std::uint64_t churn_events = 0;
  std::uint64_t skipped_trials = 0;  // initial plan infeasible (not a bug)
  // Failure tallies across all trials run (the fuzzer stops at the first
  // failing trial, so at most one trial contributes).
  std::uint64_t audit_violations = 0;
  std::uint64_t oracle_mismatches = 0;
  std::uint64_t consistency_failures = 0;
  std::optional<TrialFailure> failure;

  bool ok() const {
    return audit_violations == 0 && oracle_mismatches == 0 &&
           consistency_failures == 0 && !failure.has_value();
  }
  std::string summary() const;
};

// Runs trials until the event budget is met or a check fails (then shrinks
// and stops).
ChaosReport run_chaos(const ChaosOptions& options);

// Renders a fault script in the parse_fault_plan grammar (one event per
// "kind@T ..." clause, ';'-separated, detect_ms appended) — suitable for
// replay via `wimesh_run --faults` or a scenario `fault =` line.
std::string format_event_script(const std::vector<faults::FaultEvent>& events,
                                SimTime detection_delay);

}  // namespace wimesh::chaos
