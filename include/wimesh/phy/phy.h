#pragma once

// 802.11 PHY timing model.
//
// The TDMA-over-WiFi emulation inherits every per-frame cost of the WiFi
// PHY (preambles, SIFS/DIFS, ACK airtime), so those constants are modelled
// from the standards: 802.11a OFDM (the hardware the paper targets) and
// 802.11b DSSS for comparison runs.

#include <cstdint>
#include <string>

#include "wimesh/common/time.h"

namespace wimesh {

// MAC-relevant PHY constants plus the airtime function for one PHY mode.
class PhyMode {
 public:
  // 802.11a OFDM; rate_mbps must be one of {6, 9, 12, 18, 24, 36, 48, 54}.
  static PhyMode ofdm_802_11a(int rate_mbps);
  // 802.11b DSSS/CCK; rate_mbps must be one of {1, 2, 5, 11} (5 = 5.5).
  static PhyMode dsss_802_11b(int rate_mbps);

  const std::string& name() const { return name_; }
  double bitrate_bps() const { return bitrate_bps_; }
  // PHY family and the factory argument that selects this mode — the keys
  // the physical-layer rate tables (wimesh/radio) use to find the matching
  // error curve and rate ladder.
  bool is_ofdm() const { return family_ == Family::kOfdm; }
  int nominal_rate_mbps() const { return nominal_rate_mbps_; }

  SimTime slot_time() const { return slot_; }
  SimTime sifs() const { return sifs_; }
  // DIFS = SIFS + 2 * slot.
  SimTime difs() const { return sifs_ + slot_ * 2; }
  int cw_min() const { return cw_min_; }
  int cw_max() const { return cw_max_; }

  // Time on air of a MAC frame of `mac_bytes` total bytes (header+payload+
  // FCS), including PHY preamble/header.
  SimTime airtime(std::size_t mac_bytes) const;

  // Airtime of an ACK control frame (14 MAC bytes) at this mode's control
  // rate (the base rate of the PHY family).
  SimTime ack_airtime() const;

 private:
  PhyMode() = default;

  enum class Family { kOfdm, kDsss };
  Family family_ = Family::kOfdm;
  std::string name_;
  double bitrate_bps_ = 0.0;
  int nominal_rate_mbps_ = 0;
  double control_bitrate_bps_ = 0.0;  // rate used for ACKs
  int bits_per_symbol_ = 0;           // OFDM only
  SimTime slot_{};
  SimTime sifs_{};
  SimTime preamble_{};
  int cw_min_ = 15;
  int cw_max_ = 1023;
};

// Per-packet Bernoulli loss applied to data receptions (channel noise on
// top of collisions, which the MAC model computes itself).
struct ErrorModel {
  double packet_error_rate = 0.0;
};

}  // namespace wimesh
