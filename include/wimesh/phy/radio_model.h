#pragma once

// Protocol (range-based) radio model.
//
// Two radii: packets decode within comm_range; transmissions disturb
// receivers within interference_range (typically ~2x comm_range). This is
// the standard protocol interference model the paper's conflict graph is
// built from.

#include <vector>

#include "wimesh/common/expected.h"
#include "wimesh/graph/graph.h"
#include "wimesh/graph/topology.h"

namespace wimesh {

class RadioModel {
 public:
  RadioModel(double comm_range, double interference_range)
      : comm_range_(comm_range), interference_range_(interference_range) {
    WIMESH_ASSERT(comm_range > 0);
    WIMESH_ASSERT(interference_range >= comm_range);
  }

  // Validating factory for externally-supplied ranges (scenario files):
  // names what is wrong instead of asserting. The ctor remains for
  // internally-computed ranges where violations are bugs.
  static Expected<RadioModel> try_make(double comm_range,
                                       double interference_range);

  double comm_range() const { return comm_range_; }
  double interference_range() const { return interference_range_; }

  bool can_communicate(const Point& a, const Point& b) const {
    return distance(a, b) <= comm_range_;
  }
  bool interferes(const Point& tx, const Point& rx) const {
    return distance(tx, rx) <= interference_range_;
  }

  // Connectivity graph induced by comm_range over the positions.
  Graph build_connectivity(const std::vector<Point>& positions) const;

  // For each node, the set of nodes whose transmissions reach it with
  // interfering power (excluding itself).
  std::vector<std::vector<NodeId>> build_interference_sets(
      const std::vector<Point>& positions) const;

 private:
  double comm_range_;
  double interference_range_;
};

}  // namespace wimesh
