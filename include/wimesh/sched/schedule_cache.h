#pragma once

// Concurrent memoizing schedule cache.
//
// Scheduling dominates sweep wall-time: a seed sweep over a fixed topology
// re-solves the exact same min-slots ILP for every run, and call-dynamics
// experiments re-plan structurally identical problems on most arrivals.
// The cache keys on a canonical byte-serialization of the complete
// scheduling question — SchedulingProblem (links, demands, conflict edges,
// flow paths and budgets), frame length, scheduler policy, objective, and
// every solver option that can change the answer — so a hit can never
// return a schedule for a different problem. Exact key bytes are compared
// on lookup; the 64-bit hash only picks the shard.
//
// get_or_compute() runs the solver exactly once per distinct key across
// all threads: concurrent requesters of an in-flight key block until the
// first computation publishes, and count as hits (they did not pay for a
// solve). This keeps hit-rate accounting independent of thread count and
// avoids burning cores on duplicate ILP solves.

#include <cstdint>
#include <functional>
#include <string>

#include "wimesh/sched/scheduler.h"

namespace wimesh {

// The memoized outcome of one scheduling question. `schedule` carries the
// primary (guaranteed-class) grants only; best-effort extras depend on the
// best-effort flow set and are recomputed per plan.
struct CachedSchedule {
  bool feasible = false;
  std::string error;  // solver error when !feasible
  MeshSchedule schedule;
  long ilp_nodes = 0;
  int search_stages = 0;
};

// Canonical cache key: a byte-exact serialization of the problem plus the
// policy/objective tags and the solver options. Identical problems always
// serialize identically (LinkIds, edge order and flow order are themselves
// deterministic functions of the planning inputs).
std::string schedule_cache_key(const SchedulingProblem& problem,
                               int frame_slots, int policy_tag,
                               int objective_tag,
                               const IlpSchedulerOptions& options);

class ScheduleCache {
 public:
  ScheduleCache();
  ~ScheduleCache();
  ScheduleCache(const ScheduleCache&) = delete;
  ScheduleCache& operator=(const ScheduleCache&) = delete;

  // Returns the entry for `key`, invoking `compute` exactly once per
  // distinct key across all threads. Requesters that arrive while the
  // first computation is in flight block until it publishes.
  CachedSchedule get_or_compute(
      const std::string& key,
      const std::function<CachedSchedule()>& compute);

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t lookups() const { return hits + misses; }
    double hit_rate() const {
      return lookups() == 0
                 ? 0.0
                 : static_cast<double>(hits) / static_cast<double>(lookups());
    }
  };
  Stats stats() const;

  // Entries currently resident (ready or in flight).
  std::size_t size() const;

  // Drops all entries and resets the counters. Not safe to call while
  // get_or_compute is in flight on another thread.
  void clear();

  // One-line human-readable stats, e.g. for bench output:
  // "schedule cache: 63 hits / 64 lookups (98.4% hit rate, 1 entries)".
  std::string report() const;

 private:
  struct Impl;
  Impl* impl_;
};

}  // namespace wimesh
