#pragma once

// Conflict graph construction.
//
// Nodes of the conflict graph are directed links (LinkIds); an edge joins
// two links that cannot transmit in the same minislot. Because the TDMA
// schedule executes over WiFi hardware, every data frame on a link (a→b)
// is answered by a link-layer ACK from b — both endpoints transmit inside
// the link's minislots. Under the protocol interference model with
// single-radio half-duplex nodes, links l=(a→b) and m=(c→d) therefore
// conflict iff:
//   * they share an endpoint (a node cannot transmit twice, nor transmit
//     and receive, in one slot), or
//   * any endpoint of one link is within interference range of any
//     endpoint of the other (covers data→data, data→ACK and ACK→ACK
//     collisions in both directions).

#include <vector>

#include "wimesh/graph/graph.h"
#include "wimesh/graph/topology.h"
#include "wimesh/phy/radio_model.h"
#include "wimesh/radio/medium.h"
#include "wimesh/wimax/mesh_frame.h"

namespace wimesh {

// Conflict graph over links.count() nodes (indexed by LinkId).
//
// Built by sparse neighborhood enumeration: a spatial hash with cell size
// == interference range maps each link to the links whose endpoints could
// possibly interfere with its own, so only O(L * local density) candidate
// pairs are tested instead of all O(L^2). The result — including edge
// insertion order, hence EdgeIds — is bit-identical to the pairwise
// reference builder below (proven by the golden scale-equivalence suite).
Graph build_conflict_graph(const LinkSet& links,
                           const std::vector<Point>& positions,
                           const RadioModel& radio);

// Conflict graph from connectivity only (no geometry): links conflict when
// they share an endpoint or one link's transmitter is a graph-neighbor of
// the other link's receiver. Equivalent to the protocol model with
// interference range == comm range; useful for abstract topologies.
// Sparse like the geometric variant: candidates are the links incident to
// the 1-hop neighborhood of either endpoint (2-hop link adjacency).
Graph build_conflict_graph(const LinkSet& links, const Graph& connectivity);

// Physical (SINR-derived) conflict graph: links l=(a→b) and m=(c→d)
// conflict when they share an endpoint or when the MEAN received power
// (path loss + shadowing; fading averages out over a schedule's lifetime)
// of any endpoint of one at any endpoint of the other reaches the
// environment's interference cutoff. The ACK-aware cross product of
// endpoints matches the protocol builder, so with shadowing off, no
// walls/floors, and cutoff = tx_power − open_loss(interference_range)
// this graph is edge-for-edge identical to build_conflict_graph(...,
// RadioModel) — the high-SINR differential oracle in the tests.
// Pairwise (l asc, m asc) enumeration: EdgeIds match the naive builders.
Graph build_conflict_graph_sinr(const LinkSet& links,
                                const radio::RadioEnvironment& env);

// Reference O(L^2) pairwise builders — the original implementations, kept
// as the oracle for the sparse builders' differential tests. Same graph,
// bit for bit, just quadratic.
Graph build_conflict_graph_naive(const LinkSet& links,
                                 const std::vector<Point>& positions,
                                 const RadioModel& radio);
Graph build_conflict_graph_naive(const LinkSet& links,
                                 const Graph& connectivity);

// Lower bound on the number of slots any conflict-free schedule needs:
// the demand of every clique must serialize. Evaluates the per-node clique
// (all links touching one node are mutually conflicting) and single-link
// demands. demand[l] is in slots.
int schedule_length_lower_bound(const LinkSet& links,
                                const std::vector<int>& demand);

// Stronger bound: additionally grows a greedy clique around every link of
// the conflict graph (descending demand) and takes the heaviest clique
// found. Never weaker than the node-based bound on connected conflicts;
// the min-slot search starts here to skip provably-infeasible stages.
int schedule_length_lower_bound(const LinkSet& links,
                                const std::vector<int>& demand,
                                const Graph& conflicts);

// A maximal clique of demanded links found by greedy growth, with its
// total demand. Members are sorted ascending by LinkId.
struct DemandClique {
  std::vector<LinkId> members;
  int weight = 0;  // sum of member demands, in slots
};

// Greedy maximal cliques of the conflict graph restricted to links with
// positive demand: one clique is grown from every demanded link (candidates
// tried in descending demand order), then duplicates are removed. The
// heaviest clique's weight is exactly the clique part of
// schedule_length_lower_bound(links, demand, conflicts); the full list
// feeds the ILP scheduler's clique cutting planes. Deterministic.
std::vector<DemandClique> greedy_demand_cliques(const LinkSet& links,
                                                const std::vector<int>& demand,
                                                const Graph& conflicts);

}  // namespace wimesh
