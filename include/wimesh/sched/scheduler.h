#pragma once

// Delay-aware TDMA link scheduling — the paper's core algorithm suite.
//
// Given per-link minislot demands, a conflict graph, and per-flow delay
// budgets, find a conflict-free assignment of contiguous minislot blocks.
// Three schedulers are provided:
//
//  * IlpScheduler — the paper's approach: binary variables pick the relative
//    transmission ORDER of every conflicting link pair (plus, when delay-
//    aware, per-flow-hop "frame wrap" indicators whose sum is capped by the
//    flow's delay budget); an ILP finds an order that fits in S slots. A
//    linear search over S yields the minimum schedule length
//    (min_slots_search).
//  * order_to_schedule — given only the relative order, reconstructs slot
//    offsets with Bellman–Ford on the conflict graph (a difference-
//    constraint system). This is the cheap per-frame step once the
//    expensive ILP has fixed the order.
//  * GreedyScheduler — the delay-unaware baseline: first-fit block
//    placement in descending demand order.

#include <optional>
#include <vector>

#include "wimesh/common/expected.h"
#include "wimesh/graph/graph.h"
#include "wimesh/ilp/ilp.h"
#include "wimesh/wimax/mesh_frame.h"

namespace wimesh {

class ScheduleCache;  // sched/schedule_cache.h

// A flow's path through the mesh, as orderered LinkIds, plus how many extra
// frame-boundary waits ("wraps") its delay bound tolerates end-to-end.
struct FlowPath {
  std::vector<LinkId> links;
  int delay_budget_frames = 0;
};

// Everything the schedulers need. `demand[l]` is minislots per frame for
// link l; links with zero demand are ignored.
struct SchedulingProblem {
  LinkSet links;
  std::vector<int> demand;
  Graph conflicts;  // node i == LinkId i
  std::vector<FlowPath> flows;

  void check() const;  // asserts internal consistency
};

// Relative transmission order: order[{l,m}] == true means l's block ends
// no later than m's block starts. Stored as a flat matrix.
class TransmissionOrder {
 public:
  TransmissionOrder() = default;
  explicit TransmissionOrder(LinkId link_count)
      : n_(link_count),
        before_(static_cast<std::size_t>(link_count) *
                    static_cast<std::size_t>(link_count),
                false) {}

  bool before(LinkId l, LinkId m) const {
    return before_[idx(l, m)];
  }
  void set_before(LinkId l, LinkId m) {
    before_[idx(l, m)] = true;
  }
  LinkId link_count() const { return n_; }

 private:
  std::size_t idx(LinkId l, LinkId m) const {
    WIMESH_ASSERT(l >= 0 && l < n_ && m >= 0 && m < n_);
    return static_cast<std::size_t>(l) * static_cast<std::size_t>(n_) +
           static_cast<std::size_t>(m);
  }
  LinkId n_ = 0;
  std::vector<bool> before_;
};

struct ScheduleResult {
  MeshSchedule schedule;
  TransmissionOrder order;
  // Solver diagnostics (zeros for non-ILP schedulers).
  long ilp_nodes = 0;
  long lp_iterations = 0;
  // True when the exact tree-topology fast path produced the schedule
  // without touching the LP/ILP machinery at all.
  bool used_tree_fast_path = false;
};

struct IlpSchedulerOptions {
  // Enforce per-flow delay budgets (the paper's contribution). When false
  // the ILP only packs bandwidth, reproducing the delay-unaware comparator.
  bool delay_aware = true;
  // Limits forwarded to branch & bound. These are per feasibility stage;
  // the min-slot search skips a stage whose ILP exhausts them (flagging
  // the result as not proven minimal) rather than stalling.
  long max_nodes = 50'000;
  double time_limit_seconds = 5.0;
  // Try cheap constructive heuristics (flow-order greedy, root-LP
  // rounding) before branch & bound. The result is identical in kind —
  // any feasible schedule at the stage's S — just cheaper to find.
  // Disable to measure pure ILP behaviour.
  bool try_heuristics = true;
  // Optional memoizing cache consulted by the QoS planner's scheduling
  // step (all scheduler kinds, not just the ILPs — the policy is part of
  // the key). Shared across runs by the batch runner so fixed-topology
  // sweeps solve each distinct problem once. Not owned; may be null.
  ScheduleCache* cache = nullptr;

  // --- Branch & bound accelerators (see docs/README "ILP scheduler") ---
  // Add Queyranne clique cutting planes to the order model: for every
  // greedy maximal clique Q of the conflict graph,
  //   sum_{l in Q} d_l s_l >= sum_{l<m in Q} d_l d_m
  // and its time-reversed mirror. Valid for every feasible schedule
  // (clique members serialize on one "machine"), but cuts off fractional
  // LP points where the big-M disjunctions are loose. Also proves
  // infeasibility outright when a clique's demand exceeds the frame.
  bool clique_cuts = true;
  // Fix the relative order of mutually-interchangeable links (equal
  // demand, mutually conflicting, identical conflict neighborhoods) to
  // lowest-LinkId-first, collapsing the factorial symmetry group. Links on
  // flows whose delay budget binds are never fixed (their order affects
  // wrap counts). Preserves feasibility and the optimal objective.
  bool symmetry_breaking = true;
  // Warm-start node LPs from the parent basis, and chain the root basis
  // across the min-slot search's successive stages.
  bool warm_start = true;
  // When the active links' undirected support is a forest, try the exact
  // canonical monotone order (up-links deepest-first, then down-links
  // shallowest-first) before any LP work; it is verified against the frame
  // size and delay budgets, so enabling this never changes feasibility.
  bool tree_fast_path = true;
  // Portfolio strategies / worker threads forwarded to IlpOptions.
  // `threads` is a pure wall-clock knob: results never depend on it.
  int portfolio = 4;
  int threads = 1;
};

// Feasibility ILP at a fixed schedule length (data subframe size) of
// `frame_slots`. Returns the schedule or an error string ("infeasible" /
// "limit").
Expected<ScheduleResult> schedule_ilp(const SchedulingProblem& problem,
                                      int frame_slots,
                                      const IlpSchedulerOptions& options = {});

// Min–max delay variant (the authors' companion TON formulation): instead
// of only capping each flow's frame wraps, minimizes the MAXIMUM wrap
// count across all flows at the given schedule length, subject to the same
// per-flow budgets. Returns the schedule plus the optimal bound. More
// expensive than the feasibility program (it is an optimization, so
// branch & bound must prove optimality); intended for ablations and small
// meshes.
struct MinMaxDelayResult {
  ScheduleResult result;
  int max_wraps = 0;   // the minimized objective
  bool proven = true;  // false if limits stopped the proof early
};
Expected<MinMaxDelayResult> schedule_ilp_min_max_delay(
    const SchedulingProblem& problem, int frame_slots,
    const IlpSchedulerOptions& options = {});

struct MinSlotsResult {
  int frame_slots = 0;  // minimum found
  ScheduleResult result;
  int stages = 0;  // S values attempted during the search
  // False when an ILP stage hit its limits and the search had to continue
  // on heuristics alone — frame_slots is then an upper bound on the true
  // minimum, not a proven optimum.
  bool proven_minimal = true;
};

// The paper's outer loop: linear search upward from the clique lower bound
// for the smallest S admitting a feasible schedule, up to max_slots. Each
// stage tries the heuristics (when enabled), then the feasibility ILP; a
// stage whose ILP exhausts its limits is skipped (see proven_minimal).
Expected<MinSlotsResult> min_slots_search(
    const SchedulingProblem& problem, int max_slots,
    const IlpSchedulerOptions& options = {});

// Exact fast path for tree topologies: when the undirected support of the
// active links forms a forest, schedules the canonical monotone order —
// links pointing toward their component's root ("up") deepest-child-first,
// then links pointing away ("down") shallowest-first — via the Bellman–Ford
// reconstruction. Every root-ward/leaf-ward flow path is wrap-free under
// this order, so delay budgets are trivially met on sensibly-routed trees.
// Returns nullopt when the support has a cycle, the order needs more than
// `frame_slots` slots (the canonical order trades some spatial reuse for
// zero wraps, so at the very tightest S it may decline where the ILP still
// succeeds), or (when `require_budgets`) some flow still wraps past its
// budget. A returned schedule is always valid, so enabling the fast path
// never changes feasibility — it only answers faster when it applies.
std::optional<ScheduleResult> schedule_tree_fast_path(
    const SchedulingProblem& problem, int frame_slots,
    bool require_budgets = true);

// Delay-aware constructive heuristic: links are placed first-fit in
// ascending order of their position along the flows that use them, which
// yields monotone (wrap-free) orders on path-like demand patterns. Returns
// nullopt when S slots do not suffice for this placement.
std::optional<ScheduleResult> schedule_flow_order_greedy(
    const SchedulingProblem& problem, int frame_slots);

// True iff every flow's frame-wrap count under `schedule` is within its
// delay budget.
bool budgets_satisfied(const SchedulingProblem& problem,
                       const MeshSchedule& schedule);

// First-fit block placement in descending demand order; ignores delay
// budgets (baseline). Returns nullopt if S slots do not suffice.
std::optional<ScheduleResult> schedule_greedy(const SchedulingProblem& problem,
                                              int frame_slots);

// Round-robin baseline: blocks placed strictly in LinkId order, each
// starting where the previous conflicting block ended (maximally naive
// ordering). Returns nullopt if S slots do not suffice.
std::optional<ScheduleResult> schedule_round_robin(
    const SchedulingProblem& problem, int frame_slots);

// Reconstructs slot offsets from a relative order by solving the
// difference-constraint system with Bellman–Ford on the conflict graph:
//   order(l, m)  =>  s_m - s_l >= d_l   (block of l precedes block of m)
//   0 <= s_l <= S - d_l.
// Returns nullopt iff the order is cyclic or needs more than S slots.
std::optional<MeshSchedule> order_to_schedule(const SchedulingProblem& problem,
                                              const TransmissionOrder& order,
                                              int frame_slots);

// Extracts the relative order implied by a concrete schedule.
TransmissionOrder order_from_schedule(const SchedulingProblem& problem,
                                      const MeshSchedule& schedule);

// True iff every demanded link has a grant of exactly its demand, grants of
// conflicting links never overlap, and all grants fit in the frame.
bool validate_schedule(const SchedulingProblem& problem,
                       const MeshSchedule& schedule);

// Worst-case scheduling delay of a flow, in minislots, including the
// initial wait for the first link's block (a packet can arrive just after
// the block started) and one full frame per intermediate hop whose outbound
// block starts before the inbound block ends. `frame_total_slots` is the
// full frame length in minislots (control + data).
int worst_case_delay_slots(const MeshSchedule& schedule, const FlowPath& flow,
                           int frame_total_slots);

// Number of frame wraps along the flow under this schedule (the quantity
// the ILP's delay budget caps).
int count_frame_wraps(const MeshSchedule& schedule, const FlowPath& flow);

}  // namespace wimesh
