#pragma once

// Runtime invariant auditor (opt-in, MeshConfig::audit).
//
// The paper's headline guarantee is that the software TDMA overlay is
// conflict-free: the ILP's relative transmission order plus Bellman–Ford
// over the conflict graph means no two interfering links transmit in the
// same minislot once emulated over 802.11. This module turns that claim —
// and two adjacent conservation properties — into checked invariants
// instead of statistics:
//
//  * Channel conflict monitor — every transmission start on WifiChannel is
//    checked against the deployed schedule's conflict graph; two
//    interfering links airborne at once is a detected violation.
//  * Packet conservation ledger — every MacPacket a traffic source emits
//    must be accounted for at simulation end as delivered, dropped (with a
//    typed reason) or still queued; leaks and duplicate deliveries are
//    violations.
//  * Slot-boundary monitor — overlay transmissions must lie inside the
//    nominal minislot window of a grant of their link (start tolerance of
//    one guard time for clock skew, no tolerance at the end, since the
//    release budget already reserves the guard); overruns are flagged with
//    node, link and magnitude.
//
// The auditor observes; it never perturbs the simulation (no RNG draws, no
// events), so enabling it cannot change results — an audited sweep stays
// bit-identical to an unaudited one, across any --jobs value. Violations
// carry structured context, are counted per category, and (configurably)
// fail fast through WIMESH_ASSERT.

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "wimesh/des/simulator.h"
#include "wimesh/graph/graph.h"
#include "wimesh/wifi/channel.h"
#include "wimesh/wimax/mesh_frame.h"

namespace wimesh::audit {

// Why a packet left the system without reaching its destination. The
// taxonomy is exhaustive over the runner's drop paths; "busy at slot
// start" is deliberately absent — a skipped block leaves packets queued,
// and the overlay reports it through on_block_skipped instead.
enum class DropReason : std::uint8_t {
  kBestEffortOverflow,  // overlay best-effort queue was full (drop-tail)
  kMacQueueOverflow,    // MAC transmit queue was full
  kRetryExhausted,      // MAC retry limit reached (contention/corruption)
  kNoRoute,             // no next hop for the flow at this node
  kNoCapacity,          // TDMA link exists but holds no minislot grant
  kNodeDown,            // fault injection: a node on the path is crashed
  kScheduleRevoked,     // fault repair: packet's link vanished in a hot-swap
  kPartitioned,         // fault split the mesh; flow's route crosses the cut
};
inline constexpr std::size_t kDropReasonCount = 8;
const char* drop_reason_name(DropReason r);

enum class ViolationKind : std::uint8_t {
  kScheduleConflict,    // two conflicting links on the air simultaneously
  kSlotOverrun,         // overlay transmission outside its granted block
  kUnscheduledLink,     // overlay-mode frame on a link with no grant at all
  kPacketLeak,          // packets vanished: ledger residual > observed queues
  kDuplicateDelivery,   // one packet id delivered twice at its destination
  kDuplicateId,         // two source packets carried the same id
};
inline constexpr std::size_t kViolationKindCount = 6;
const char* violation_kind_name(ViolationKind k);

// One detected violation with enough context to debug it.
struct ViolationRecord {
  ViolationKind kind{};
  SimTime time{};                 // simulation time of detection
  NodeId node = kInvalidNode;     // offending transmitter (when known)
  LinkId link = kInvalidLink;     // offending link (when known)
  std::uint64_t packet_id = 0;    // offending packet (ledger violations)
  std::int64_t magnitude_ns = 0;  // overrun / overlap / leak size
  std::string detail;             // human-readable one-liner
};

struct AuditConfig {
  // Abort through WIMESH_ASSERT on the first violation instead of
  // collecting a report (for CI and bisection).
  bool fail_fast = false;
  // Detailed records kept per report; counters are always exact.
  std::size_t max_records = 32;
};

// Per-run audit outcome, carried inside SimulationResult.
struct AuditReport {
  bool enabled = false;
  std::uint64_t violations[kViolationKindCount] = {};
  // Would-be violations inside a declared fault window (see waive_until):
  // counted here instead of violations[], never fail-fast. All zero unless
  // fault injection is active.
  std::uint64_t waived[kViolationKindCount] = {};
  std::uint64_t drops[kDropReasonCount] = {};
  std::uint64_t packets_created = 0;
  std::uint64_t packets_delivered = 0;  // distinct packets at destination
  std::uint64_t packets_dropped = 0;    // distinct, never delivered
  std::uint64_t packets_residual = 0;   // still queued/in flight at end
  std::uint64_t blocks_skipped = 0;     // overlay busy-at-slot-start skips
  std::vector<ViolationRecord> records;

  std::uint64_t count(ViolationKind k) const {
    return violations[static_cast<std::size_t>(k)];
  }
  std::uint64_t drop_count(DropReason r) const {
    return drops[static_cast<std::size_t>(r)];
  }
  std::uint64_t total_violations() const;
  std::uint64_t waived_total() const;
  std::uint64_t total_drops() const;
  // "audit: ok (...)" or "audit: N violation(s) (...)" one-liner.
  std::string summary() const;
};

// Observes one simulation run. Hook methods are called by the runner and
// by WifiChannel (through the ChannelProbe interface); all state is
// per-run and single-threaded, like the simulation itself.
class InvariantAuditor : public ChannelProbe {
 public:
  InvariantAuditor(const Simulator& sim, AuditConfig config);

  // Arms the conflict and slot monitors (TDMA overlay mode). `links`,
  // `conflicts` and `schedule` must outlive the auditor. Without this call
  // only the packet ledger runs (contention-MAC baselines). May be called
  // again after a schedule hot-swap: the monitors re-arm against the
  // repaired plan and in-flight transmission state is reset.
  void install_schedule(const LinkSet& links, const Graph& conflicts,
                        const MeshSchedule& schedule, const FrameConfig& frame,
                        SimTime guard);

  // Declares a fault/repair transition window: violations detected before
  // `until` are tallied as waived (reported separately, never fail-fast)
  // rather than counted as failures. Monotonic — an earlier `until` than
  // the current window is ignored. The fault runtime calls this around
  // each injected fault and each schedule swap; outside these windows the
  // audit contract is unchanged.
  void waive_until(SimTime until);

  // ChannelProbe: a frame just started transmitting; it leaves the air at
  // `end`.
  void on_transmission_start(const WifiFrame& frame, SimTime end) override;

  // Packet ledger hooks.
  void on_packet_created(const MacPacket& p);
  void on_packet_delivered(const MacPacket& p, NodeId at);
  void on_packet_dropped(const MacPacket& p, DropReason reason);

  // Overlay skipped a granted block because the MAC was still busy.
  void on_block_skipped(NodeId node, LinkId link);

  // Closes the ledger. `observed_residual` is the number of packets the
  // runner still found queued in overlays and MACs at simulation end; a
  // ledger remainder beyond it means packets leaked.
  void finalize(std::uint64_t observed_residual);

  const AuditReport& report() const { return report_; }

 private:
  struct ActiveTx {
    LinkId link = kInvalidLink;
    NodeId tx = kInvalidNode;
    SimTime end{};
  };

  void record(ViolationKind kind, NodeId node, LinkId link,
              std::uint64_t packet_id, std::int64_t magnitude_ns,
              std::string detail);
  void check_conflicts(LinkId link, NodeId tx, SimTime end);
  void check_slot_window(LinkId link, NodeId tx, SimTime start, SimTime end);

  const Simulator& sim_;
  AuditConfig config_;
  AuditReport report_;

  // Conflict/slot monitor state (armed by install_schedule).
  bool schedule_installed_ = false;
  const LinkSet* links_ = nullptr;
  const Graph* conflicts_ = nullptr;
  const MeshSchedule* schedule_ = nullptr;
  FrameConfig frame_{};
  SimTime guard_{};
  SimTime waive_until_{};  // violations before this instant are waived
  std::vector<ActiveTx> active_;

  // Ledger state: per-packet flags keyed by packet id.
  static constexpr std::uint8_t kDelivered = 1;
  static constexpr std::uint8_t kDropped = 2;
  std::unordered_map<std::uint64_t, std::uint8_t> ledger_;
};

}  // namespace wimesh::audit
