#pragma once

// Text scenario format: one file describes a complete experiment —
// topology, radio, frame layout, scheduler, traffic mix, MAC and duration —
// so studies can be driven without recompiling (examples/wimesh_run.cpp).
//
//   # lines starting with '#' are comments; keys are 'key = value'
//   topology = grid 3 3 100          # chain N S | grid R C S | ring N R |
//                                    # random N SIDE RANGE SEED | tree A D S |
//                                    # custom
//   node 0 0 0                       # with 'topology = custom': one
//   node 1 100 0                     # 'node <id> <x> <y>' line per node
//   link 0 1                         # (dense ids 0..N-1) and one
//                                    # 'link <u> <v>' line per edge.
//                                    # Duplicate nodes/links, self-loops
//                                    # and undeclared endpoints are
//                                    # scenario errors, not crashes.
//   zones = 4                        # partition the mesh into N zones and
//                                    # schedule them in parallel
//                                    # (wimesh::zones); 0 = off (default)
//   event_queue = calendar           # calendar | heap — DES event
//                                    # structure (bit-identical results;
//                                    # heap is the differential reference)
//   comm_range = 110
//   interference_range = 220
//   phy = ofdm54                     # ofdm{6,9,12,18,24,36,48,54},
//                                    # dsss{1,2,5,11}
//   radio = on,shadowing=4,fading=jakes
//                                    # physical channel stack (wimesh/radio)
//                                    # replacing the binary protocol model.
//                                    # Comma-separated knobs:
//                                    #   on | model=physical|protocol |
//                                    #   shadowing=SIGMA_DB |
//                                    #   fading=jakes|none | doppler=HZ |
//                                    #   oscillators=N | txpower=DBM |
//                                    #   noise=DBM | capture=DB | cs=DBM |
//                                    #   cutoff=DBM | exponent_los=X |
//                                    #   exponent_obstructed=X |
//                                    #   floor_loss=DB | freq=GHZ |
//                                    #   adapt=on|off | probe=N | ewma=X |
//                                    #   seed=N
//                                    # Repeated 'radio =' lines accumulate.
//                                    # Omitted = protocol model, bit-for-bit
//                                    # the pre-radio behavior.
//   wall 50 0 50 100 12              # obstacle segment x1 y1 x2 y2 [loss_db]
//                                    # (any topology; needs a 'radio =' line
//                                    # to take effect)
//   floor 4 1                        # 'floor <node> <level>': storey of a
//                                    # node (default 0); each level of
//                                    # separation adds floor_loss dB
//   frame_ms = 10
//   control_slots = 4
//   data_slots = 96
//   guard_us = auto                  # 'auto' or microseconds
//   scheduler = ilp-delay            # ilp-delay|ilp-nodelay|greedy|round-robin
//   ilp = threads=4,portfolio=2      # ILP solver knobs, comma-separated:
//                                    #   [no-]cuts | [no-]symmetry |
//                                    #   [no-]warm | [no-]tree |
//                                    #   portfolio=N | threads=N |
//                                    #   max_nodes=N | time_limit_s=X
//                                    # repeated 'ilp =' lines accumulate
//   routing = hop                    # hop | load-aware
//   mac = tdma                       # tdma | dcf | edca
//   duration_s = 10
//   seed = 1
//   audit = on                       # off | on | fail-fast
//   fault = node-crash@2 node=4; master-fail@3
//                                    # fault-plan grammar in
//                                    # wimesh/faults/plan.h; repeated
//                                    # 'fault =' lines accumulate
//   trace = off                      # off | on | all |
//                                    # des,tdma,wifi,sync,faults,prof,admit
//                                    # (wimesh/trace category filter)
//   admit = rate=0.5,holding=60      # online admission churn replay
//                                    # (wimesh::admit) instead of a packet
//                                    # simulation. Comma-separated knobs:
//                                    #   on | rate=CALLS_PER_S |
//                                    #   holding=S | horizon=S | events=N |
//                                    #   codec=g711|g729|g723 |
//                                    #   max_delay_ms=N | be_fraction=X |
//                                    #   seed=N | compaction=N |
//                                    #   [no-]degrade | [no-]check
//                                    # 'check' cross-checks every decision
//                                    # against the cold re-solve oracle.
//                                    # Repeated 'admit =' lines accumulate.
//                                    # A scenario with 'admit =' may omit
//                                    # traffic declarations.
//
//   # traffic declarations (one per line):
//   voip <id> <a> <b> <codec> <max_delay_ms>    # bidirectional call
//   video <id> <src> <dst> <mean_bps>           # rtPS-style VBR stream
//   bulk <id> <src> <dst> <bytes> <rate_bps>    # best-effort Poisson

#include <string>
#include <vector>

#include "wimesh/admit/engine.h"
#include "wimesh/common/expected.h"
#include "wimesh/core/mesh_network.h"

namespace wimesh {

struct Scenario {
  MeshConfig config;
  std::vector<FlowSpec> flows;
  MacMode mac = MacMode::kTdmaOverlay;
  SimTime duration = SimTime::seconds(10);
  // Online admission churn ('admit =' key / wimesh_run --admit). When
  // enabled the CLI replays Poisson call churn through an
  // admit::AdmissionEngine instead of running a packet-level simulation.
  bool admit_enabled = false;
  bool admit_check = false;    // cross-check vs the cold re-solve oracle
  bool admit_degrade = false;  // serve rejected arrivals as best-effort
  int admit_compaction = 8;    // departures tolerated before compaction
  admit::ChurnSpec admit_churn;
};

// Parses the text form; returns a message naming the offending line on
// failure. Unknown keys are errors (typos should not silently change an
// experiment).
Expected<Scenario> parse_scenario(const std::string& text);

// Renders a human-readable per-flow report of a finished run.
std::string format_report(const Scenario& scenario,
                          const SimulationResult& result);

}  // namespace wimesh
