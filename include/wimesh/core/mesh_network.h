#pragma once

// Public facade: build a mesh, declare flows, compute the QoS plan
// (routing + delay-aware TDMA schedule), then run packet-level simulations
// under either MAC — the paper's TDMA-over-WiFi overlay or plain 802.11
// DCF — and collect per-flow QoS results.
//
// Typical use (see examples/quickstart.cpp):
//   MeshConfig cfg;
//   cfg.topology = make_chain(5, 100.0);
//   MeshNetwork net(cfg);
//   net.add_voip_call(0, /*a=*/0, /*b=*/4, VoipCodec::g729());
//   auto plan = net.compute_plan();                 // admission + schedule
//   SimulationResult r = net.run(MacMode::kTdmaOverlay, SimTime::seconds(10));

#include <memory>
#include <vector>

#include "wimesh/audit/auditor.h"
#include "wimesh/common/expected.h"
#include "wimesh/des/simulator.h"
#include "wimesh/faults/plan.h"
#include "wimesh/metrics/flow_stats.h"
#include "wimesh/qos/planner.h"
#include "wimesh/radio/medium.h"
#include "wimesh/sync/sync.h"

namespace wimesh {

enum class MacMode {
  kTdmaOverlay,  // the paper's system: scheduled slots over zero-backoff WiFi
  kDcf,          // baseline: plain 802.11 CSMA/CA forwarding
  kEdca,         // baseline: 802.11e prioritized CSMA/CA (voice > best effort)
};

struct MeshConfig {
  Topology topology;
  double comm_range = 110.0;
  double interference_range = 220.0;
  PhyMode phy = PhyMode::ofdm_802_11a(54);
  // Physical channel stack (wimesh/radio): SINR reception with path loss /
  // shadowing / fading, power-based carrier sense, optional rate
  // adaptation, and the SINR-derived conflict graph. Off by default —
  // radio.enabled == false leaves every legacy code path untouched, so
  // existing scenarios produce byte-identical output.
  radio::RadioConfig radio;
  EmulationParams emulation;  // frame layout + guard time
  SyncConfig sync;
  // When true the guard time is derived from the sync error bound at the
  // mesh diameter instead of emulation.guard_time.
  bool auto_guard = true;
  double packet_error_rate = 0.0;
  // RTS/CTS handshake + NAV for kDcf runs (hidden-terminal mitigation).
  bool dcf_rts_cts = false;
  SchedulerKind scheduler = SchedulerKind::kIlpDelayAware;
  RoutingPolicy routing = RoutingPolicy::kHopCount;
  IlpSchedulerOptions ilp;
  std::uint64_t seed = 1;
  // Runtime invariant auditing (wimesh/audit): conflict monitor against the
  // deployed schedule, packet-conservation ledger, slot-boundary monitor.
  // Observation only — results are bit-identical with auditing on or off.
  bool audit = false;
  // Abort via WIMESH_ASSERT on the first violation instead of reporting.
  bool audit_fail_fast = false;
  // Scripted fault injection (wimesh/faults): node/link/master failures,
  // PER bursts, clock steps, plus the recovery paths (sync failover,
  // schedule repair with degradation, hot-swap at a frame boundary).
  // Empty plan = no fault machinery at all; results are then bit-identical
  // to a build without the subsystem.
  faults::FaultPlan faults;
  // Event-trace categories (wimesh/trace Category bitmask) requested by
  // the scenario ('trace =' key). 0 = tracing off. Recording changes no
  // simulation state — traced runs stay bit-identical to untraced ones.
  std::uint32_t trace_categories = 0;
  // Zone-partitioned scheduling (wimesh/zones): split the mesh into this
  // many zones, solve each zone's schedule in parallel (ilp.threads worker
  // threads), then reconcile border links deterministically. 0 = off
  // (single global solve). Zoning trades global delay optimality for
  // city-scale tractability; the composed schedule is still conflict-free.
  int zones = 0;
  // DES event structure for run(); both kinds produce bit-identical
  // results (see wimesh/des/simulator.h).
  EventQueueKind event_queue = EventQueueKind::kCalendarQueue;
};

struct FlowResult {
  FlowSpec spec;
  FlowStats stats;
  SimTime planned_worst_delay{};  // analytic bound (guaranteed flows)
  bool delay_bound_met = false;   // analytic check (guaranteed flows)
};

struct SimulationResult {
  SimTime measured_interval{};
  std::vector<FlowResult> flows;
  // Channel / overlay diagnostics.
  std::uint64_t frames_transmitted = 0;
  std::uint64_t receptions_corrupted = 0;
  std::uint64_t mac_drops = 0;
  std::uint64_t overlay_busy_at_slot_start = 0;
  // Packets the MAC handed back at a block's release deadline because
  // channel-loss retries ran out of budget (re-released in later blocks).
  std::uint64_t overlay_deadline_requeues = 0;
  // Invariant audit outcome (enabled == false unless MeshConfig::audit).
  audit::AuditReport audit;
  // Fault/recovery continuity metrics (enabled == false unless the run had
  // a non-empty MeshConfig::faults plan).
  faults::FaultReport faults;

  double aggregate_throughput_bps() const;
  double mean_delay_ms() const;
  double max_loss_rate() const;
  const FlowResult* find_flow(int flow_id) const;
};

class MeshNetwork {
 public:
  explicit MeshNetwork(MeshConfig config);

  // Flow declaration (before compute_plan).
  void add_flow(FlowSpec spec);
  // A VoIP call is a pair of opposite guaranteed flows with ids
  // (id_base, id_base + 1).
  void add_voip_call(int id_base, NodeId a, NodeId b, const VoipCodec& codec,
                     SimTime max_delay = SimTime::milliseconds(100));

  // Routes, sizes demands, runs the configured scheduler, fits best-effort
  // capacity and verifies delay bounds. Must succeed before run() in
  // kTdmaOverlay mode.
  Expected<const MeshPlan*> compute_plan();

  // Longest admissible prefix of the declared flows (VoIP capacity
  // experiments). Leaves that prefix installed as the active plan and
  // returns how many flows were admitted.
  std::size_t admit_incrementally();

  // Replaces the active plan's schedule with an externally built one over
  // the same links (order-ablation experiments). Per-flow worst-case delay
  // analytics are recomputed against the new schedule.
  void override_schedule(MeshSchedule schedule);

  // Packet-level simulation for `duration` of traffic plus a drain period.
  SimulationResult run(MacMode mode, SimTime duration,
                       SimTime drain = SimTime::milliseconds(500));

  const MeshPlan& plan() const {
    WIMESH_ASSERT_MSG(has_plan_, "compute_plan() has not succeeded");
    return plan_;
  }
  const MeshConfig& config() const { return config_; }
  // Guard time actually in use (after auto_guard resolution).
  SimTime effective_guard() const { return config_.emulation.guard_time; }

 private:
  MeshConfig config_;
  // Physical channel environment (null when config_.radio.enabled is
  // false). Declared before planner_, which captures a pointer to it.
  std::unique_ptr<radio::RadioEnvironment> radio_env_;
  QosPlanner planner_;
  std::vector<FlowSpec> flows_;
  MeshPlan plan_;
  bool has_plan_ = false;
};

}  // namespace wimesh
