#pragma once

// 802.11 DCF (CSMA/CA) MAC.
//
// Implements the distributed coordination function over WifiChannel:
// DIFS deferral, slotted binary-exponential backoff with freezing, unicast
// ACK after SIFS, retry with CW doubling, drop after the retry limit.
// Broadcast data is sent once, unacknowledged (used by sync beacons).
//
// Simplifications, documented for reviewers: no RTS/CTS and no NAV (the
// paper's testbed ran without RTS/CTS), no capture effect, and post-TX
// backoff is applied only when another packet is queued. These affect
// absolute contention losses slightly, not the qualitative DCF-vs-TDMA
// comparison.
//
// The same MAC serves double duty: the contention baseline, and the
// transmission engine the TDMA overlay drives during its slots (where the
// schedule guarantees a contention-free medium, so access costs collapse to
// DIFS + backoff + SIFS + ACK).

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "wimesh/common/rng.h"
#include "wimesh/des/simulator.h"
#include "wimesh/wifi/channel.h"

namespace wimesh {

class DcfMac : public MacInterface {
 public:
  struct Callbacks {
    // Fires at the RECEIVING MAC when a data frame addressed to it (or a
    // broadcast) is decoded.
    std::function<void(const MacPacket&)> on_delivered;
    // Fires at the sender when a packet is abandoned; the cause says
    // whether the queue overflowed or the retry limit was exhausted.
    std::function<void(const MacPacket&, MacDropCause)> on_dropped;
    // Fires at the sender when a packet's ACK arrives (or, for broadcast,
    // when the transmission completes).
    std::function<void(const MacPacket&)> on_sent;
  };

  struct Config {
    int retry_limit = 7;
    std::size_t max_queue = 1024;
    // TDMA-overlay mode: contention is eliminated by the schedule, so the
    // random backoff is forced to zero and per-packet service time becomes
    // deterministic (DIFS + airtime + SIFS + ACK). This mirrors how the
    // paper's emulation configures the WiFi hardware inside its slots.
    bool zero_backoff = false;
    // RTS/CTS handshake for unicast data at or above rts_threshold bytes.
    // Requires a channel constructed with deliver_overheard = true so
    // third parties hear the reservations (NAV).
    bool rts_cts = false;
    std::size_t rts_threshold = 0;
  };

  DcfMac(Simulator& sim, WifiChannel& channel, NodeId self, Rng rng,
         Callbacks callbacks, Config config);
  DcfMac(Simulator& sim, WifiChannel& channel, NodeId self, Rng rng,
         Callbacks callbacks)
      : DcfMac(sim, channel, self, rng, std::move(callbacks), Config{}) {}

  // Enqueues a packet for transmission to packet.to (kInvalidNode =
  // broadcast). packet.from is overwritten with this node.
  void send(MacPacket packet);

  NodeId self() const { return self_; }
  std::size_t queue_length() const { return queue_.size(); }
  bool in_service() const { return current_.has_value(); }
  // Packets this MAC still holds: queued plus the one in service. Used by
  // the auditor's packet-conservation check at simulation end.
  std::size_t pending_packets() const {
    return queue_.size() + (current_.has_value() ? 1 : 0);
  }

  // Worst-case service time of one packet on a contention-free medium:
  // DIFS + backoff slots (zero in zero_backoff mode, CWmin otherwise) +
  // data airtime + SIFS + ACK.
  SimTime max_service_time(std::size_t payload_bytes) const;
  // Expected service time with mean backoff (CWmin / 2 slots).
  SimTime mean_service_time(std::size_t payload_bytes) const;

  // Deterministic per-packet cost of the contention-free overlay mode for a
  // given PHY: DIFS + data airtime + SIFS + ACK. Static so capacity
  // planning can run before any MAC exists.
  static SimTime overlay_service_time(const PhyMode& phy,
                                      std::size_t payload_bytes);

  // TDMA-overlay release discipline. The slotter sizes its releases by
  // one-attempt service times, so a retry after a corrupted exchange eats
  // budget that was promised to later packets — left unchecked, retries
  // spill transmissions past the granted block into other nodes' slots.
  // With a deadline armed, no attempt (first or retry) starts unless its
  // worst-case service completes by the deadline; when one would not fit,
  // the MAC abandons service and hands every packet it still holds back
  // through the deadline handler, newest-first, so a consumer that inserts
  // each at the front of its queue restores the original FIFO order. Never
  // armed in plain DCF mode, where contention has no block to respect.
  void set_release_deadline(SimTime deadline) { release_deadline_ = deadline; }
  void set_deadline_handler(
      std::function<void(const std::vector<MacPacket>&)> handler) {
    on_deadline_ = std::move(handler);
  }
  // Packets handed back across all deadline expiries (diagnostic).
  std::uint64_t deadline_requeues() const { return deadline_requeues_; }

  // Diagnostics.
  std::uint64_t tx_attempts() const { return tx_attempts_; }
  std::uint64_t retransmissions() const { return retransmissions_; }
  std::uint64_t drops() const { return drops_; }

  // MacInterface (driven by WifiChannel):
  void on_medium_busy() override;
  void on_medium_idle() override;
  void on_frame_received(const WifiFrame& frame) override;

 private:
  enum class State {
    kIdle,       // nothing to send
    kWaitIdle,   // have a packet, medium busy
    kWaitDifs,   // medium idle, DIFS running
    kBackoff,    // counting down backoff slots
    kTxRts,      // our RTS is on the air
    kWaitCts,    // RTS sent, CTS timer running
    kTxData,     // our data frame is on the air
    kWaitAck,    // data sent, ACK timer running
  };

  bool medium_busy() const {
    return busy_count_ > 0 || transmitting_ || sim_.now() < nav_until_;
  }
  bool use_rts_for_current() const;
  int draw_backoff();
  void start_service();
  void begin_access();
  void medium_became_busy();
  void medium_became_idle();
  void on_difs_elapsed();
  void on_backoff_slot();
  void begin_exchange();
  void transmit_rts();
  void on_rts_tx_end();
  void on_cts_timeout();
  void transmit_data();
  void on_data_tx_end();
  void on_ack_timeout();
  void retry_after_failure();
  bool past_deadline(std::size_t payload_bytes) const;
  void requeue_past_deadline();
  void set_nav(SimTime until);
  void send_ack(const WifiFrame& data);
  void send_cts(const WifiFrame& rts);
  void finish_packet(bool post_backoff);
  void cancel_timer();

  Simulator& sim_;
  WifiChannel& channel_;
  NodeId self_;
  Rng rng_;
  Callbacks cb_;
  Config config_;

  std::deque<MacPacket> queue_;
  std::optional<MacPacket> current_;
  // Duplicate filter, as 802.11 does with per-(transmitter, TID) sequence
  // caches: a retry whose original ACK was lost must be re-ACKed but not
  // delivered upward twice. Keyed by (sender, flow) — not sender alone —
  // because a deadline requeue re-sends a packet in a *later* block, and a
  // guaranteed-class packet from the same sender may legitimately arrive in
  // between; within one flow delivery stays FIFO, so last-seen id suffices.
  std::unordered_map<std::uint64_t, std::uint64_t> last_seen_from_;
  State state_ = State::kIdle;
  int busy_count_ = 0;
  bool transmitting_ = false;  // data or ACK on the air from this node
  int attempt_ = 0;
  int cw_ = 15;
  int backoff_slots_ = 0;
  SimTime nav_until_{};  // virtual carrier sense from overheard RTS/CTS
  EventHandle timer_{};
  // Release discipline (TDMA overlay only; disengaged when unset).
  std::optional<SimTime> release_deadline_;
  std::function<void(const std::vector<MacPacket>&)> on_deadline_;

  std::uint64_t tx_attempts_ = 0;
  std::uint64_t retransmissions_ = 0;
  std::uint64_t drops_ = 0;
  std::uint64_t deadline_requeues_ = 0;
};

}  // namespace wimesh
