#pragma once

// Shared-medium wireless channel.
//
// Default (protocol) model: a reception is lost if any other transmission
// audible at the receiver overlaps it in time (no capture effect), if the
// receiver itself transmits during it (half-duplex), or if the Bernoulli
// error process fires. Audibility is the binary RadioModel range test.
//
// With a physical radio environment attached (set_radio), reception turns
// probabilistic: concurrent transmitters accumulate interference power at
// each receiver, the frame survives iff its SINR clears the capture
// threshold and the per-rate SNR→PER curve's coin flip, carrier sense
// fires on received power crossing the CS threshold (so fading and walls
// shape who defers to whom), and unicast data may ride an adapted rate
// picked by the Minstrel-style controller. Half-duplex loss and the
// legacy Bernoulli/impairment stages behave identically in both models.
//
// Propagation delay is negligible at mesh ranges (< 2 µs) and is modelled
// as zero; carrier sensing is therefore instantaneous, which is the
// standard simplification for protocol-model simulators.

#include <cstdint>
#include <memory>
#include <vector>

#include "wimesh/common/rng.h"
#include "wimesh/des/simulator.h"
#include "wimesh/graph/topology.h"
#include "wimesh/phy/phy.h"
#include "wimesh/phy/radio_model.h"
#include "wimesh/radio/medium.h"
#include "wimesh/radio/minstrel.h"
#include "wimesh/wifi/packet.h"

namespace wimesh {

struct WifiFrame {
  enum class Type { kData, kAck, kRts, kCts };
  Type type = Type::kData;
  MacPacket packet;        // for control frames, packet.id ties the exchange
  NodeId from = kInvalidNode;
  NodeId to = kInvalidNode;  // kInvalidNode = broadcast (data only)
  // NAV reservation carried by the frame (RTS/CTS/DATA duration field):
  // how long the medium stays reserved after this frame ends.
  SimTime nav{};
};

// Passive observer of every transmission the channel carries. Used by the
// runtime invariant auditor (wimesh/audit) to check the deployed schedule's
// conflict-freedom; the probe must not re-enter the channel.
class ChannelProbe {
 public:
  virtual ~ChannelProbe() = default;
  // `frame` just started transmitting; it leaves the air at `end`.
  virtual void on_transmission_start(const WifiFrame& frame, SimTime end) = 0;
};

// Per-reception impairment hook (fault injection: link outages, Gilbert–
// Elliott PER bursts — wimesh/faults). Consulted for every otherwise-clean
// reception; returning true corrupts it. May draw its own randomness, so
// the channel's Bernoulli error stream is untouched by its presence.
class ChannelImpairment {
 public:
  virtual ~ChannelImpairment() = default;
  virtual bool corrupts(NodeId tx, NodeId rx, SimTime now) = 0;
};

// The channel's view of a MAC.
class MacInterface {
 public:
  virtual ~MacInterface() = default;
  // Carrier-sense edge notifications; the channel may nest busy periods, so
  // implementations count (busy while count > 0).
  virtual void on_medium_busy() = 0;
  virtual void on_medium_idle() = 0;
  // A frame decoded successfully at this node.
  virtual void on_frame_received(const WifiFrame& frame) = 0;
};

class WifiChannel {
 public:
  // When `deliver_overheard` is set, unicast frames are decoded by every
  // node in range (not just the addressee) so MACs can honor NAV
  // reservations from overheard RTS/CTS. Off by default: overhearing costs
  // events and only the RTS/CTS mode needs it.
  WifiChannel(Simulator& sim, std::vector<Point> positions, RadioModel radio,
              PhyMode phy, ErrorModel error, Rng rng,
              bool deliver_overheard = false);

  // Registers the MAC entity for a node; required before it can transmit
  // or hear anything.
  void attach(NodeId node, MacInterface* mac);

  // Installs a transmission observer (nullptr to remove). Not owned.
  void set_probe(ChannelProbe* probe) { probe_ = probe; }

  // Installs a reception impairment (nullptr to remove). Not owned.
  void set_impairment(ChannelImpairment* impairment) {
    impairment_ = impairment;
  }

  // Attaches a physical radio environment (nullptr to detach; not owned;
  // must outlive the channel). Switches reception, carrier sense and — when
  // the environment enables it — rate adaptation to the physical model
  // described in the header comment. Call before any transmission.
  void set_radio(const radio::RadioEnvironment* env);

  // Node liveness (fault injection). A down node radiates nothing — its
  // transmissions neither occupy the medium nor reach any receiver — and
  // decodes nothing. All nodes start up.
  void set_node_up(NodeId node, bool up);
  bool node_up(NodeId node) const {
    return node_up_[static_cast<std::size_t>(node)] != 0;
  }

  // Starts a transmission now; the caller must itself respect CSMA timing.
  // Returns the on-air duration (caller schedules its own tx-end handling).
  SimTime transmit(const WifiFrame& frame);

  SimTime frame_airtime(const WifiFrame& frame) const;

  const PhyMode& phy() const { return phy_; }
  NodeId node_count() const {
    return static_cast<NodeId>(positions_.size());
  }

  // Diagnostics.
  std::uint64_t frames_transmitted() const { return frames_transmitted_; }
  std::uint64_t frames_delivered() const { return frames_delivered_; }
  std::uint64_t receptions_corrupted() const { return receptions_corrupted_; }

 private:
  struct Reception {
    WifiFrame frame;
    NodeId rx = kInvalidNode;
    bool corrupted = false;
    // Physical model only: signal power at reception start and the summed
    // power of every transmission that overlapped it (SINR denominator).
    double signal_dbm = 0.0;
    double interference_mw = 0.0;
    int interferers = 0;
  };
  struct ActiveTx {
    std::uint64_t key;
    NodeId tx;
    SimTime end;
    // Whether the transmitter was up at transmit start; fixed for the
    // transmission's lifetime so the busy/idle carrier-sense edges it
    // produced stay balanced even if liveness changes mid-air.
    bool radiated = true;
    // Rate-table index this frame went out at (physical model; control
    // frames and non-adapted data use the base rate).
    std::size_t rate_idx = 0;
    // Physical model: nodes whose carrier sense went busy at tx start; the
    // idle edges at tx end replay this list, so busy/idle stay balanced
    // even though fading varies between the two instants.
    std::vector<NodeId> cs_nodes;
    std::vector<Reception> receptions;
  };

  bool node_transmitting(NodeId n) const;
  void finish_transmission(std::uint64_t key);

  Simulator& sim_;
  std::vector<Point> positions_;
  RadioModel radio_;
  PhyMode phy_;
  ErrorModel error_;
  Rng rng_;
  bool deliver_overheard_ = false;
  ChannelProbe* probe_ = nullptr;
  ChannelImpairment* impairment_ = nullptr;
  const radio::RadioEnvironment* radio_env_ = nullptr;
  std::vector<PhyMode> rate_modes_;  // airtime per rate-table index
  std::unique_ptr<radio::RateController> rate_ctrl_;
  std::vector<MacInterface*> macs_;
  std::vector<char> node_up_;
  std::vector<ActiveTx> active_;
  std::uint64_t next_key_ = 1;
  std::uint64_t frames_transmitted_ = 0;
  std::uint64_t frames_delivered_ = 0;
  std::uint64_t receptions_corrupted_ = 0;
};

}  // namespace wimesh
