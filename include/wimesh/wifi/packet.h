#pragma once

// Link-layer packet passed between traffic sources, MACs and the overlay.

#include <cstdint>

#include "wimesh/common/time.h"
#include "wimesh/graph/graph.h"

namespace wimesh {

struct MacPacket {
  std::uint64_t id = 0;      // unique per packet, assigned by the source
  int flow_id = -1;          // owning flow (-1 = control/unattributed)
  NodeId from = kInvalidNode;  // transmitter of the current hop
  NodeId to = kInvalidNode;    // link receiver; kInvalidNode = broadcast
  std::size_t bytes = 0;       // MAC payload size (bytes)
  SimTime created_at{};        // source timestamp, for end-to-end delay
};

// MAC header + FCS added to every data payload on the air.
inline constexpr std::size_t kMacOverheadBytes = 34;

// Why a MAC abandoned a packet, reported through the on_dropped callback
// so owners (and the invariant auditor) can account losses by cause.
enum class MacDropCause : std::uint8_t {
  kQueueOverflow,  // transmit queue full at send()
  kRetryLimit,     // retry limit exhausted without an ACK
};

}  // namespace wimesh
