#pragma once

// 802.11e EDCA MAC — prioritized CSMA/CA.
//
// The era's WiFi-native answer to QoS: per-access-category queues with
// shorter AIFS and smaller contention windows for voice. EDCA *prioritizes*
// but cannot *guarantee* — voice still contends with voice, collisions and
// queueing persist across hops — which is precisely the gap the paper's
// TDMA overlay closes. Implemented here as the third MAC baseline
// (MacMode::kEdca in wimesh/core).
//
// Two categories are modelled (the ones the experiments use):
//   AC_VO (voice):       AIFSN 2, CWmin 3,  CWmax 7
//   AC_BE (best effort): AIFSN 3, CWmin 15, CWmax 1023
// Each category runs its own DCF-style backoff entity; they share one
// radio. A lower category that fires while the higher one is on the air
// suffers a virtual internal collision (CW doubles, new draw), matching
// the standard's internal-collision resolution. TXOP bursting is not
// modelled (TXOP limits for AC_VO are ~1.5 ms — a couple of voice packets
// — and do not change the qualitative comparison).

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <unordered_map>

#include "wimesh/common/rng.h"
#include "wimesh/des/simulator.h"
#include "wimesh/wifi/channel.h"

namespace wimesh {

enum class AccessCategory : std::uint8_t { kVoice = 0, kBestEffort = 1 };
inline constexpr std::size_t kAccessCategoryCount = 2;

class EdcaMac : public MacInterface {
 public:
  struct Callbacks {
    std::function<void(const MacPacket&)> on_delivered;
    std::function<void(const MacPacket&, AccessCategory, MacDropCause)>
        on_dropped;
    std::function<void(const MacPacket&, AccessCategory)> on_sent;
  };

  struct Config {
    int retry_limit = 7;
    std::size_t max_queue_per_ac = 1024;
  };

  EdcaMac(Simulator& sim, WifiChannel& channel, NodeId self, Rng rng,
          Callbacks callbacks, Config config);
  EdcaMac(Simulator& sim, WifiChannel& channel, NodeId self, Rng rng,
          Callbacks callbacks)
      : EdcaMac(sim, channel, self, rng, std::move(callbacks), Config{}) {}

  // Enqueues into the category's queue; packet.from is overwritten.
  void send(MacPacket packet, AccessCategory ac);

  NodeId self() const { return self_; }
  std::size_t queue_length(AccessCategory ac) const {
    return entity(ac).queue.size();
  }
  // Packets this MAC still holds across both categories (queued + in
  // service). Used by the auditor's conservation check at simulation end.
  std::size_t pending_packets() const {
    std::size_t total = 0;
    for (const Entity& e : entities_) {
      total += e.queue.size() + (e.current.has_value() ? 1 : 0);
    }
    return total;
  }

  std::uint64_t tx_attempts(AccessCategory ac) const {
    return entity(ac).tx_attempts;
  }
  std::uint64_t internal_collisions() const { return internal_collisions_; }
  std::uint64_t drops(AccessCategory ac) const { return entity(ac).drops; }

  // MacInterface:
  void on_medium_busy() override;
  void on_medium_idle() override;
  void on_frame_received(const WifiFrame& frame) override;

 private:
  enum class State : std::uint8_t {
    kIdle,
    kWaitIdle,
    kWaitAifs,
    kBackoff,
    kTxData,
    kWaitAck,
  };

  struct AcParams {
    int aifsn = 2;
    int cw_min = 3;
    int cw_max = 7;
  };

  struct Entity {
    AcParams params;
    std::deque<MacPacket> queue;
    std::optional<MacPacket> current;
    State state = State::kIdle;
    int attempt = 0;
    int cw = 3;
    int backoff_slots = 0;
    EventHandle timer{};
    std::uint64_t tx_attempts = 0;
    std::uint64_t drops = 0;
  };

  Entity& entity(AccessCategory ac) {
    return entities_[static_cast<std::size_t>(ac)];
  }
  const Entity& entity(AccessCategory ac) const {
    return entities_[static_cast<std::size_t>(ac)];
  }

  bool medium_busy() const { return busy_count_ > 0 || transmitting_; }
  SimTime aifs(const Entity& e) const;
  int draw_backoff(Entity& e);
  void start_service(Entity& e);
  void begin_access(Entity& e);
  void medium_became_busy();
  void medium_became_idle();
  void on_aifs_elapsed(Entity& e);
  void on_backoff_slot(Entity& e);
  void try_transmit(Entity& e);
  void on_data_tx_end(Entity& e);
  void on_ack_timeout(Entity& e);
  void handle_failure(Entity& e, bool count_retry);
  void send_ack(const WifiFrame& data);
  void finish_packet(Entity& e);
  void cancel_timer(Entity& e);
  AccessCategory category_of(const Entity& e) const;

  Simulator& sim_;
  WifiChannel& channel_;
  NodeId self_;
  Rng rng_;
  Callbacks cb_;
  Config config_;
  std::array<Entity, kAccessCategoryCount> entities_;
  int busy_count_ = 0;
  bool transmitting_ = false;
  std::uint64_t internal_collisions_ = 0;
  std::unordered_map<NodeId, std::uint64_t> last_seen_from_;
};

}  // namespace wimesh
