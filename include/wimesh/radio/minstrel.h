#pragma once

// Minstrel-style per-link rate adaptation.
//
// Each directed link keeps an EWMA success probability per rate of the
// family's ladder and transmits at the rate maximizing expected throughput
// (nominal rate × EWMA success). Every Nth data transmission is a probe:
// a deterministic round-robin over the non-best candidates, so stale
// statistics refresh without any randomness — adaptation is a pure
// function of the feedback sequence, preserving bit-identical runs.
//
// Differences from Linux Minstrel, on purpose:
//  * probes are periodic and round-robin instead of randomized (no RNG);
//  * the ladder is floored at the planning rate (the scenario's PhyMode):
//    TDMA slot demands are sized at that rate, so adaptation may only
//    shorten airtimes, never overrun a granted block. The same floor keeps
//    DCF NAV estimates conservative.
//  * untried rates start optimistic (success = 1), so the controller
//    climbs quickly on clean links and the EWMA walks failures back down.

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "wimesh/graph/graph.h"
#include "wimesh/radio/medium.h"
#include "wimesh/radio/reception.h"

namespace wimesh::radio {

class MinstrelLink {
 public:
  // Candidate rates are table indices [floor_index, table->size()).
  MinstrelLink(const RateTable* table, std::size_t floor_index,
               RateAdaptConfig config);

  // Rate index for the next data transmission (the current best, or a
  // probe every config.probe_interval-th call).
  std::size_t pick_rate();

  // PHY-level feedback for a transmission at `rate_index`. Returns true
  // when the best rate changed (callers trace the switch).
  bool on_result(std::size_t rate_index, bool success);

  // Current best rate (max nominal * EWMA success; ties go to the lower,
  // more robust rate).
  std::size_t best_rate() const { return best_; }
  double ewma_success(std::size_t rate_index) const;
  std::uint64_t attempts(std::size_t rate_index) const;

 private:
  std::size_t recompute_best() const;

  const RateTable* table_;
  std::size_t floor_ = 0;
  RateAdaptConfig config_;
  struct RateStats {
    double ewma = 1.0;  // optimistic prior
    std::uint64_t attempts = 0;
    std::uint64_t successes = 0;
  };
  std::vector<RateStats> stats_;  // indexed by (rate index - floor_)
  std::size_t best_ = 0;
  std::size_t probe_cursor_ = 0;  // round-robin over non-best candidates
  std::uint64_t tx_count_ = 0;
};

// Lazily materializes one MinstrelLink per directed (tx, rx) link.
class RateController {
 public:
  RateController(const RateTable* table, std::size_t floor_index,
                 RateAdaptConfig config)
      : table_(table), floor_(floor_index), config_(config) {}

  MinstrelLink& link(NodeId tx, NodeId rx);

 private:
  const RateTable* table_;
  std::size_t floor_;
  RateAdaptConfig config_;
  std::unordered_map<std::uint64_t, MinstrelLink> links_;
};

}  // namespace wimesh::radio
