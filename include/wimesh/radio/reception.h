#pragma once

// Reception physics: SINR and per-rate SNR → packet-error-rate curves.
//
// The channel accumulates the power of every concurrent transmitter at a
// receiver; this header turns that power budget into a decode probability.
// Error curves are analytic AWGN bit-error rates for the modulation of
// each 802.11 rate (BPSK/QPSK/16-QAM/64-QAM for OFDM, DBPSK/DQPSK/CCK for
// DSSS), with convolutional coding folded in via the standard
// first-event-error approximation (hard-decision Viterbi, d_free per code
// rate). The curves are intentionally simple — monotone in SNR, ordered
// across rates, with realistic ~20 dB spread between 6 and 54 Mbps —
// rather than a calibrated receiver model; what the emulation needs is
// the *shape* (graceful PER walls per rate) that the binary protocol
// model cannot express. One faithful wrinkle survives the simplicity:
// OFDM 9 Mbps (punctured BPSK 3/4, d_free 5) needs marginally MORE SNR
// than 12 Mbps (QPSK 1/2, d_free 10) — the well-known crossover that
// makes 9 Mbps nearly useless on real 802.11a hardware.

#include <cstddef>
#include <vector>

#include "wimesh/phy/phy.h"

namespace wimesh::radio {

// dBm <-> milliwatt. Pure, total (mw <= 0 maps to -infinity-ish floor).
double dbm_to_mw(double dbm);
double mw_to_dbm(double mw);

// Signal-to-interference-plus-noise ratio in dB. `interference_mw` is the
// summed received power of all other concurrent transmitters.
double sinr_db(double signal_dbm, double interference_mw,
               double noise_floor_dbm);

enum class Modulation {
  kBpsk,   // OFDM 6/9
  kQpsk,   // OFDM 12/18
  kQam16,  // OFDM 24/36
  kQam64,  // OFDM 48/54
  kDbpsk,  // DSSS 1 (11-chip Barker spreading)
  kDqpsk,  // DSSS 2
  kCck5,   // CCK 5.5
  kCck11,  // CCK 11
};

struct RateEntry {
  int rate_mbps = 6;  // PhyMode factory argument (5 stands for 5.5)
  Modulation modulation = Modulation::kBpsk;
  double code_rate = 0.5;  // convolutional rate; 1.0 = uncoded (DSSS/CCK)
};

// PER of a `bytes`-byte frame at this rate under AWGN with the given SNR.
// Monotone non-increasing in snr_db, in [0, 1].
double packet_error_rate(const RateEntry& rate, double snr_db,
                         std::size_t bytes);

// The rate ladder of one PHY family, lowest rate first, with precomputed
// decode thresholds. Immutable after construction; safe to share.
class RateTable {
 public:
  static RateTable ofdm_802_11a();
  static RateTable dsss_802_11b();
  // Table of the family `phy` belongs to.
  static RateTable for_phy(const PhyMode& phy);

  std::size_t size() const { return entries_.size(); }
  const RateEntry& entry(std::size_t i) const;
  // The PhyMode carrying this rate (airtime/timing).
  PhyMode phy_mode(std::size_t i) const;
  // Index of the entry with the given nominal rate; asserts if absent.
  std::size_t index_of(int rate_mbps) const;

  double per(std::size_t i, double snr_db, std::size_t bytes) const;
  // Smallest SNR (dB) at which a 1000-byte frame decodes with PER <= 10%;
  // the conventional "sensitivity" point of the rate. Strictly increasing
  // along the ladder except the OFDM 9/12 Mbps crossover documented above
  // (9 Mbps sits a fraction of a dB above 12 Mbps).
  double min_snr_db(std::size_t i) const;

 private:
  RateTable(std::vector<RateEntry> entries, bool ofdm);
  std::vector<RateEntry> entries_;
  std::vector<double> min_snr_db_;
  bool ofdm_ = true;
};

}  // namespace wimesh::radio
