#pragma once

// The physical channel stack, assembled: configuration for every layer and
// the RadioEnvironment that answers power queries for the channel, the
// SINR conflict-graph builder and the benches.
//
// Received power at time t decomposes as
//     tx_power − path_loss(positions, walls, floors)      (propagation.h)
//              + shadowing(pair)                          (log-normal, static)
//              + fading(pair, t)                          (fading.h, Jakes)
// and every stochastic term is a pure function of (seed, pair[, t]) via
// Rng::derive_stream — never of query order — so runs are bit-identical
// for any --jobs value and radio-enabled sweeps stay reproducible.
//
// The environment is selected per scenario ('radio =' key) and defaults
// off; a null environment leaves every legacy code path untouched, so
// existing scenarios produce byte-identical output.

#include <cstdint>
#include <limits>
#include <unordered_map>
#include <vector>

#include "wimesh/common/expected.h"
#include "wimesh/radio/fading.h"
#include "wimesh/radio/propagation.h"
#include "wimesh/radio/reception.h"

namespace wimesh::radio {

// Minstrel-style rate adaptation knobs (wimesh/radio/minstrel.h).
struct RateAdaptConfig {
  bool enabled = false;
  // Every Nth data transmission on a link probes a non-best rate instead
  // of using the current best (deterministic round-robin probe order).
  int probe_interval = 16;
  // EWMA weight of the newest per-rate success sample.
  double ewma_alpha = 0.25;
};

struct RadioConfig {
  // Master switch. Off = the binary protocol model (RadioModel) governs
  // reception and conflicts exactly as before this subsystem existed.
  bool enabled = false;
  PropagationConfig propagation;
  // Log-normal shadowing: one zero-mean normal(sigma) dB offset per
  // unordered node pair, constant for the run (obstacles do not move).
  double shadowing_sigma_db = 0.0;
  FadingConfig fading;
  RateAdaptConfig rate_adapt;
  double tx_power_dbm = 17.0;
  double noise_floor_dbm = -96.0;
  // A reception survives concurrent interference only if its SINR clears
  // this threshold (capture effect); below it the frame is a collision
  // loss regardless of the error curve.
  double capture_threshold_db = 10.0;
  // Carrier-sense / preamble-detect power: a node hears the medium busy
  // when any transmission reaches it above this level.
  double cs_threshold_dbm = -82.0;
  // Mean interferer power at or above which two links conflict in the
  // SINR conflict graph. NaN = auto (noise floor + 6 dB).
  double interference_cutoff_dbm =
      std::numeric_limits<double>::quiet_NaN();
  // Root seed of the shadowing/fading streams. 0 = derive from the run
  // seed, so sweeps see an independent channel per run.
  std::uint64_t seed = 0;
  // Storey of each node (indexed by NodeId; empty = everyone on floor 0).
  std::vector<int> floors;
};

class RadioEnvironment {
 public:
  // `base_phy` anchors the rate ladder: its family selects the RateTable
  // and its rate is the planning rate — the floor rate adaptation may
  // never go below, so adapted airtimes cannot outgrow TDMA slot sizing.
  // The propagation config must already be valid (see Propagation::
  // try_make; scenario parsing validates before construction).
  RadioEnvironment(RadioConfig config, std::vector<Point> positions,
                   const PhyMode& base_phy, std::uint64_t effective_seed);

  const RadioConfig& config() const { return config_; }
  const Propagation& propagation() const { return propagation_; }
  const RateTable& rates() const { return rates_; }
  std::size_t base_rate_index() const { return base_rate_index_; }
  NodeId node_count() const {
    return static_cast<NodeId>(positions_.size());
  }
  int floor_of(NodeId n) const;

  // Mean received power: tx_power − path loss + shadowing. Symmetric.
  double mean_rx_power_dbm(NodeId tx, NodeId rx) const;
  // Instantaneous received power: mean + fading(t).
  double rx_power_dbm(NodeId tx, NodeId rx, SimTime t) const;
  double fading_gain_db(NodeId tx, NodeId rx, SimTime t) const {
    return fading_.gain_db(tx, rx, t);
  }

  double noise_floor_mw() const { return noise_floor_mw_; }
  double snr_db(double rx_power_dbm) const {
    return rx_power_dbm - config_.noise_floor_dbm;
  }
  double sinr_db(double rx_power_dbm, double interference_mw) const {
    return radio::sinr_db(rx_power_dbm, interference_mw,
                          config_.noise_floor_dbm);
  }
  double capture_threshold_db() const { return config_.capture_threshold_db; }
  double cs_threshold_dbm() const { return config_.cs_threshold_dbm; }
  // The SINR conflict-graph cutoff with the auto default resolved.
  double interference_cutoff_dbm() const { return interference_cutoff_dbm_; }

 private:
  double shadowing_db(NodeId a, NodeId b) const;

  RadioConfig config_;
  std::vector<Point> positions_;
  Propagation propagation_;
  FadingProcess fading_;
  RateTable rates_;
  std::size_t base_rate_index_ = 0;
  std::uint64_t shadow_seed_ = 0;
  double noise_floor_mw_ = 0.0;
  double interference_cutoff_dbm_ = 0.0;
  // Per-pair shadowing cache. Values are pure functions of (seed, pair),
  // so lazy fill order cannot change results (mutable for const lookups).
  mutable std::unordered_map<std::uint64_t, double> shadow_cache_;
};

}  // namespace wimesh::radio
