#pragma once

// Physical-layer propagation: mean path loss between two mesh nodes.
//
// The paper's testbed ran over real WiFi hardware in a building, where link
// quality came from walls and distance rather than a binary radius. This
// model reproduces that: log-distance path loss with a distinct exponent
// for line-of-sight vs obstructed pairs (Winner2-style A/B intercepts, as
// in the hurjaewon indoor mesh scripts), a per-wall penetration loss for
// every axis-independent wall segment the direct path crosses, and a
// per-floor penalty for multi-storey layouts. Log-normal shadowing and the
// time-varying (Jakes) component stack on top of this mean — see
// wimesh/radio/medium.h, which owns the full power budget.
//
// Everything here is a pure function of the configuration and the two
// endpoints: no RNG, no state, safe to share across threads.

#include <vector>

#include "wimesh/common/expected.h"
#include "wimesh/graph/topology.h"

namespace wimesh::radio {

// One wall, modelled as a 2-D segment the signal must penetrate. Walls are
// infinitely thin planes with a lump penetration loss; a zero-length
// segment is a configuration error (see Propagation::try_make).
struct WallSegment {
  Point a;
  Point b;
  double loss_db = 12.0;
};

struct PropagationConfig {
  // Open (line-of-sight) path loss: A*log10(d/d0) + B + 20*log10(f/5GHz).
  double exponent_los = 18.7;       // A when the path crosses no wall
  double exponent_obstructed = 20.0; // A when at least one wall intersects
  double intercept_los_db = 46.8;    // B (loss at the reference distance)
  double intercept_obstructed_db = 46.4;
  double reference_distance_m = 1.0;
  double frequency_ghz = 5.0;        // 802.11a band by default
  // Per-wall penetration loss for every wall the direct path crosses.
  std::vector<WallSegment> walls;
  // Multi-floor: |floor(tx) - floor(rx)| * floor_loss_db is added, and a
  // cross-floor path counts as obstructed (the ceiling is an obstacle), so
  // it also uses the obstructed exponent/intercept pair. Floors are
  // assigned per node (see RadioConfig::floors); nodes default to 0.
  double floor_loss_db = 18.0;
};

class Propagation {
 public:
  explicit Propagation(PropagationConfig config);

  // Validating factory (scenario parsing path): rejects non-positive
  // exponents or reference distance, zero-length walls and negative wall
  // or floor losses with a named error.
  static Expected<Propagation> try_make(PropagationConfig config);

  // Mean path loss in dB between two positions on the given floors.
  // Symmetric in its arguments. Distances at or below the reference
  // distance cost the intercept alone (never negative loss).
  double loss_db(const Point& tx, const Point& rx, int tx_floor = 0,
                 int rx_floor = 0) const;

  // Number of configured wall segments the open segment tx..rx crosses.
  int wall_crossings(const Point& tx, const Point& rx) const;

  // Loss of an unobstructed path at distance d (no walls, same floor).
  // Monotone in d; used to invert power thresholds into ranges.
  double open_loss_db(double distance_m) const;

  // Distance at which open_loss_db reaches `loss` (inverse of the above).
  double distance_for_open_loss(double loss_db) const;

  const PropagationConfig& config() const { return config_; }

 private:
  PropagationConfig config_;
};

}  // namespace wimesh::radio
