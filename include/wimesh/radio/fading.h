#pragma once

// Time-correlated small-scale fading (Jakes / Clarke sum-of-sinusoids).
//
// Each unordered node pair owns an independent fading process: a bank of
// sinusoid oscillators whose arrival angles and phases are drawn once from
// an RNG stream derived from (radio seed, pair key) — the same
// derive_stream discipline wimesh::batch uses for per-run streams. The
// gain at time t is therefore a pure function of (seed, pair, t): the
// fading a link experiences never depends on evaluation order, on which
// worker thread runs the simulation, or on how many other links were
// queried first, so fading-enabled sweeps stay bit-identical for any
// --jobs value.
//
// The envelope is Rayleigh-distributed with unit mean power (0 dB average
// gain) and decorrelates over roughly 1/(2*doppler_hz) seconds — walking
// speed at 5 GHz gives a few tens of milliseconds, i.e. several TDMA
// frames, which is exactly the regime the guard-time story cares about.

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "wimesh/common/rng.h"
#include "wimesh/common/time.h"
#include "wimesh/graph/graph.h"

namespace wimesh::radio {

// Stream key of the unordered pair {a, b}: collision-free packing of the
// two 32-bit NodeIds. Shared by the shadowing and fading stream derivation
// so a pair's randomness is addressable without any draw ordering.
std::uint64_t pair_stream_key(NodeId a, NodeId b);

struct FadingConfig {
  enum class Kind {
    kNone,   // fading layer disabled; gain is 0 dB always
    kJakes,  // Rayleigh envelope, Jakes Doppler spectrum
  };
  Kind kind = Kind::kNone;
  double doppler_hz = 5.0;  // max Doppler shift (pedestrian @ 5 GHz ~ 5-10)
  int oscillators = 8;      // sum-of-sinusoids order

  bool enabled() const { return kind != Kind::kNone; }
};

// One pair's oscillator bank.
class JakesFader {
 public:
  // Angles/phases are drawn from `stream_seed` at construction; two faders
  // built from the same seed are identical regardless of when or where
  // they are built.
  JakesFader(std::uint64_t stream_seed, const FadingConfig& config);

  // Power gain in dB at virtual time t (0 dB = the mean of the process).
  // Deep fades are floored at -60 dB so the value stays finite.
  double gain_db(SimTime t) const;

 private:
  struct Oscillator {
    double omega = 0.0;    // 2*pi*doppler*cos(arrival angle), rad/s
    double phase_i = 0.0;
    double phase_q = 0.0;
  };
  std::vector<Oscillator> oscillators_;
  double scale_ = 1.0;  // sqrt(1/M): unit mean envelope power
};

// Lazily materializes one JakesFader per unordered node pair. Lookup
// never draws from a shared RNG — each pair's stream seed is derived
// directly from (root seed, pair key), so creation order is irrelevant.
class FadingProcess {
 public:
  FadingProcess(std::uint64_t root_seed, FadingConfig config)
      : root_seed_(root_seed), config_(config) {}

  // Power gain in dB for the pair {a, b} at time t; 0 when disabled.
  double gain_db(NodeId a, NodeId b, SimTime t) const;

  const FadingConfig& config() const { return config_; }

 private:
  std::uint64_t root_seed_;
  FadingConfig config_;
  // Pair key -> fader, grown on first use (mutable: lookups are
  // conceptually const and the content is order-independent).
  mutable std::unordered_map<std::uint64_t, JakesFader> faders_;
};

}  // namespace wimesh::radio
