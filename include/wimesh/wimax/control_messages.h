#pragma once

// 802.16 mesh control messages (MSH-DSCH style) — the wire format that
// carries the centralized schedule to every node each frame.
//
// The emulation reserves a control subframe; whether a schedule actually
// FITS in it is a real constraint the planner can check: each grant is an
// information element of a few bytes, the message rides the WiFi medium at
// the base rate, and the control subframe has a fixed duration. This
// module provides the encoding, a byte-exact round-trip codec, and the
// capacity arithmetic.

#include <cstdint>
#include <optional>
#include <vector>

#include "wimesh/phy/phy.h"
#include "wimesh/wimax/mesh_frame.h"

namespace wimesh {

// One grant information element: which link owns which minislot range.
struct GrantIe {
  std::uint16_t link = 0;     // LinkId
  std::uint8_t start = 0;     // first minislot
  std::uint8_t length = 0;    // minislots granted

  friend bool operator==(const GrantIe&, const GrantIe&) = default;
};

// Schedule-dissemination message (MSH-DSCH flavored): header + grant IEs.
struct MshDschMessage {
  std::uint32_t frame_sequence = 0;
  std::vector<GrantIe> grants;

  friend bool operator==(const MshDschMessage&,
                         const MshDschMessage&) = default;
};

inline constexpr std::size_t kMshDschHeaderBytes = 6;  // seq(4) + count(2)
inline constexpr std::size_t kGrantIeBytes = 4;

// Serialized size of a message.
std::size_t encoded_size(const MshDschMessage& message);

// Encodes to a flat byte vector (fixed-width little-endian fields).
std::vector<std::uint8_t> encode(const MshDschMessage& message);

// Decodes; nullopt on truncation or a count/size mismatch.
std::optional<MshDschMessage> decode(const std::vector<std::uint8_t>& bytes);

// Builds the dissemination message for a schedule (primary grants plus
// best-effort extras, in link order). Requires every grant to fit the IE
// field widths (minislot indices < 256), which FrameConfig guarantees for
// the frame sizes used here.
MshDschMessage build_schedule_message(const MeshSchedule& schedule,
                                      std::uint32_t frame_sequence);

// Bytes the control subframe can carry when the message is broadcast once
// at the PHY's airtime over `control_slots` minislots of `frame`.
std::size_t control_subframe_capacity_bytes(const FrameConfig& frame,
                                            const PhyMode& phy);

// True iff the schedule's dissemination message fits the control subframe.
bool schedule_fits_control_subframe(const MeshSchedule& schedule,
                                    const FrameConfig& frame,
                                    const PhyMode& phy);

}  // namespace wimesh
