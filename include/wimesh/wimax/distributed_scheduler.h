#pragma once

// 802.16 mesh distributed *coordinated* scheduling — the three-way
// handshake, round by round.
//
// Where `election.h` computes the steady-state slot ownership in one shot,
// real distributed scheduling converges over control subframes: in each
// round a node that wins the control-channel election sends one
// MSH-DSCH Request for a link; the link's receiver answers with a Grant
// chosen from *its local view* (the grants it has itself confirmed or
// overheard within its neighborhood); the requester Confirms, and only
// then does the range become live. Nodes never see a global conflict
// graph — consistency emerges because both endpoints of every conflicting
// link pair overhear at least one side of each exchange (the same
// 2-hop-visibility argument the standard makes).
//
// The model captures what matters at the scheduling layer: per-round
// progress, local-view grant selection, rejection/retry when views
// disagree, and the convergence-latency-vs-size behaviour (experiment
// R-A4). Control messages are abstracted to one handshake per winner per
// round (a control subframe carries a handful, so this is conservative).

#include <cstdint>
#include <vector>

#include "wimesh/graph/graph.h"
#include "wimesh/wimax/election.h"
#include "wimesh/wimax/mesh_frame.h"

namespace wimesh {

struct DistributedScheduleResult {
  // Converged per-link grants (one contiguous block per link, like the
  // centralized scheduler produces).
  std::vector<SlotRange> grants;       // empty (length 0) = not granted
  std::vector<int> unmet;              // demand still unserved per link
  int rounds = 0;                      // control rounds until convergence
  int handshakes = 0;                  // requests sent (incl. rejected)
  int rejections = 0;                  // grants refused by the confirmer
  int messages_lost = 0;               // handshakes lost to control loss
  // Links that hit max_link_attempts and gave up, in link-id order. An
  // abandoned link keeps its unmet demand, so converged stays false.
  std::vector<LinkId> abandoned;
  bool converged = false;              // all demand served within the cap

  int used_slots() const;
};

struct DistributedSchedulerConfig {
  int max_rounds = 1000;
  std::uint32_t election_seed = 0x5eed;
  // ---- Handshake hardening (all defaults reproduce the legacy behavior).
  // Give up on a link after this many failed handshakes (0 = never): a
  // permanently ungrantable link otherwise burns one handshake every round
  // it wins until max_rounds.
  int max_link_attempts = 0;
  // After the k-th failure a link waits base << (k-1) rounds (capped at
  // backoff_cap_rounds) before requesting again; 0 = retry immediately.
  int backoff_base_rounds = 0;
  int backoff_cap_rounds = 32;
  // Probability an entire three-way handshake is voided by a lost control
  // message (one draw per handshake, from loss_seed — the election stream
  // is untouched). Nonzero loss also disables the no-progress early exit:
  // a fully rejected round is then indistinguishable from transient loss,
  // so links must rely on attempt caps/backoff to terminate.
  double control_loss_rate = 0.0;
  std::uint64_t loss_seed = 0x10ad;
};

// Runs the handshake to convergence (or the round cap). `demand[l]` is the
// block size link l requests; `conflicts` is the ground-truth conflict
// graph the *simulation* uses to decide which exchanges each node
// overhears — the nodes themselves only ever act on their local views.
DistributedScheduleResult run_distributed_scheduling(
    const LinkSet& links, const std::vector<int>& demand,
    const Graph& conflicts, int frame_slots,
    const DistributedSchedulerConfig& config = {});

// True iff no two conflicting links hold overlapping grants.
bool distributed_schedule_conflict_free(
    const DistributedScheduleResult& result, const Graph& conflicts);

}  // namespace wimesh
