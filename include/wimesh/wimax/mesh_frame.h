#pragma once

// 802.16 (WiMAX) mesh-mode frame structures.
//
// Mesh mode divides time into fixed frames; each frame starts with a control
// subframe (network config / schedule dissemination messages) followed by a
// data subframe of equal-length minislots. A schedule grants each directed
// link a contiguous range of minislots per frame; grants repeat every frame
// until changed. These types are pure structure + arithmetic — scheduling
// policy lives in wimesh/sched and the WiFi emulation in wimesh/tdma.

#include <cstdint>
#include <optional>
#include <vector>

#include "wimesh/common/assert.h"
#include "wimesh/common/time.h"
#include "wimesh/graph/graph.h"

namespace wimesh {

// A directed radio link.
struct Link {
  NodeId from = kInvalidNode;
  NodeId to = kInvalidNode;

  friend bool operator==(const Link&, const Link&) = default;
};

using LinkId = std::int32_t;
inline constexpr LinkId kInvalidLink = -1;

// Dense registry of the directed links a schedule covers. LinkIds index
// per-link vectors everywhere (demands, grants, conflict graph nodes).
class LinkSet {
 public:
  // Returns the id of the link, adding it if new.
  LinkId add(Link link);

  LinkId find(Link link) const;
  bool contains(Link link) const { return find(link) != kInvalidLink; }

  const Link& link(LinkId id) const {
    WIMESH_ASSERT(id >= 0 && id < count());
    return links_[static_cast<std::size_t>(id)];
  }
  LinkId count() const { return static_cast<LinkId>(links_.size()); }
  const std::vector<Link>& links() const { return links_; }

 private:
  std::vector<Link> links_;
};

// 802.16 mesh frame layout: `control_slots` minislots of control subframe
// followed by `data_slots` minislots of data subframe.
struct FrameConfig {
  SimTime frame_duration = SimTime::milliseconds(10);
  int control_slots = 4;
  int data_slots = 64;

  int total_slots() const { return control_slots + data_slots; }

  SimTime slot_duration() const {
    WIMESH_ASSERT(total_slots() > 0);
    return frame_duration / total_slots();
  }

  // Offset of data minislot i from the frame start.
  SimTime data_slot_offset(int i) const {
    WIMESH_ASSERT(i >= 0 && i < data_slots);
    return slot_duration() * (control_slots + i);
  }

  // Frame index containing absolute time t (frames start at t = 0).
  std::int64_t frame_index(SimTime t) const { return t / frame_duration; }

  SimTime frame_start(std::int64_t index) const {
    return frame_duration * index;
  }
};

// A contiguous block of data minislots [start, start + length).
struct SlotRange {
  int start = 0;
  int length = 0;

  int end() const { return start + length; }
  bool overlaps(const SlotRange& o) const {
    return length > 0 && o.length > 0 && start < o.end() && o.start < end();
  }

  friend bool operator==(const SlotRange&, const SlotRange&) = default;
};

// Per-frame minislot grants for every link in a LinkSet. In 802.16 mesh
// terms this is the steady-state result of centralized scheduling carried
// in MSH-CSCH/MSH-DSCH messages.
class MeshSchedule {
 public:
  MeshSchedule() = default;
  MeshSchedule(const LinkSet& links, int frame_slots)
      : frame_slots_(frame_slots),
        grants_(static_cast<std::size_t>(links.count())),
        extra_(static_cast<std::size_t>(links.count())) {}

  int frame_slots() const { return frame_slots_; }
  LinkId link_count() const { return static_cast<LinkId>(grants_.size()); }

  // Grants `range` to the link; the range must lie inside the frame. A link
  // may hold at most one grant (block scheduling, as in the paper).
  void set_grant(LinkId link, SlotRange range);

  // The link's primary grant, or nullopt if it has none.
  std::optional<SlotRange> grant(LinkId link) const {
    WIMESH_ASSERT(link >= 0 && link < link_count());
    const auto& g = grants_[static_cast<std::size_t>(link)];
    if (g.length == 0) return std::nullopt;
    return g;
  }

  // Adds a supplementary grant (best-effort capacity in leftover slots).
  // Unlike the primary grant, a link may hold any number of these.
  void add_extra_grant(LinkId link, SlotRange range);

  const std::vector<SlotRange>& extra_grants(LinkId link) const {
    WIMESH_ASSERT(link >= 0 && link < link_count());
    return extra_[static_cast<std::size_t>(link)];
  }

  // Primary + extra grants of a link, in slot order.
  std::vector<SlotRange> all_grants(LinkId link) const;

  // Highest slot index in use + 1 (the schedule length to be minimized).
  int used_slots() const;

  // Total granted slots across links (primary + extra).
  int granted_slots() const;

 private:
  int frame_slots_ = 0;
  std::vector<SlotRange> grants_;
  std::vector<std::vector<SlotRange>> extra_;
};

}  // namespace wimesh
