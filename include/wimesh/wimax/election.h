#pragma once

// Distributed election scheduling — 802.16 mesh's decentralized mode.
//
// Besides centralized scheduling (the paper's ILP), 802.16 mesh defines a
// distributed mode in which nodes compete for minislots with a pseudo-
// random *mesh election*: every contender hashes (identity, slot number)
// and the highest hash among 2-hop competitors wins the slot. Each node
// can evaluate the election locally because it knows its 2-hop
// neighborhood, so no central scheduler or global conflict graph is
// needed at runtime.
//
// This module reproduces that mechanism at the link level over the same
// conflict graph the ILP uses, making the two directly comparable: the
// election needs no coordination but produces fragmented grants with no
// delay guarantee, and its slot usage is systematically worse than the
// centralized optimum (ablation R-A2).

#include <cstdint>
#include <vector>

#include "wimesh/graph/graph.h"
#include "wimesh/wimax/mesh_frame.h"

namespace wimesh {

// The 802.16-style smearing hash: deterministic, avalanching, cheap.
// Every node computes the same value for the same (competitor, slot).
std::uint32_t mesh_election_hash(std::uint32_t competitor,
                                 std::uint32_t slot, std::uint32_t seed);

struct ElectionSchedule {
  int frame_slots = 0;
  // Per-link granted slot ranges (fragmented; slot-granular, coalesced
  // into maximal runs).
  std::vector<std::vector<SlotRange>> grants;
  // Demand (in slots) that did not win enough elections within the frame.
  std::vector<int> unmet;

  int used_slots() const;
  int granted_slots(LinkId link) const;
  int total_unmet() const;
};

// Runs the election slot by slot: in each minislot every link with unmet
// demand competes; winners are chosen greedily in descending hash order,
// skipping links that conflict with an already-seated winner (exactly the
// local rule each 802.16 node applies within its extended neighborhood).
ElectionSchedule schedule_by_election(const LinkSet& links,
                                      const std::vector<int>& demand,
                                      const Graph& conflicts, int frame_slots,
                                      std::uint32_t seed = 0x5eed);

// True iff no two conflicting links hold overlapping granted slots.
bool election_conflict_free(const ElectionSchedule& schedule,
                            const Graph& conflicts);

}  // namespace wimesh
