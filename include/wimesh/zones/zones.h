#pragma once

// wimesh::zones — zone-partitioned scheduling for city-scale meshes.
//
// One global delay-aware ILP over thousands of links is intractable; a
// city-scale mesh is scheduled hierarchically instead:
//
//  1. Partition the nodes into zones (deterministic BFS growth from the
//     lowest unassigned NodeId, so the partition is reproducible and
//     zones are connected whenever the mesh is).
//  2. Phase 1 — solve every zone's scheduling problem independently and
//     in parallel (wimesh::exec): each zone runs the existing min-slot
//     search over the links whose transmitter lives in the zone.
//  3. Phase 2 — reconcile border links (links with a conflict-graph
//     neighbor in another zone) with a deterministic two-phase
//     reservation pass, echoing the distributed three-way handshake of
//     802.16 coordinated distributed scheduling: each border link
//     *requests* its zone-local grant, then *confirms* in ascending
//     global LinkId order, first-fit relocating past already-committed
//     conflicting grants when the request collides.
//
// Interior links conflict only within their zone (a cross-zone conflict
// would make them border by definition), so the composed schedule is
// conflict-free by construction; validate_schedule / wimesh::audit verify
// it independently. The trade: cross-zone flows lose the global delay
// guarantee (their budgets are not constraints of any single zone solve),
// which the QoS planner reports instead of enforcing when zoning is on.
//
// Results are bit-identical for any worker-thread count: zone solves are
// independent and the border pass runs single-threaded in LinkId order.

#include <string>
#include <vector>

#include "wimesh/common/expected.h"
#include "wimesh/graph/graph.h"
#include "wimesh/sched/scheduler.h"

namespace wimesh::zones {

struct ZoneOptions {
  // Requested zone count; clamped to [1, node count]. The partitioner
  // always produces exactly this many (possibly uneven) zones.
  int zone_count = 4;
  // When non-empty, this per-node zone assignment is used verbatim instead
  // of running partition_zones — the fault runtime injects connected-
  // component islands here so partition recovery reuses the whole zoned
  // pipeline (islands are fault-induced zones). Must assign every link
  // transmitter a zone in [0, zone_count).
  std::vector<int> explicit_zone_of_node;
  // Worker threads for the phase-1 zone solves. Pure wall-clock knob —
  // the composed schedule never depends on it.
  int jobs = 1;
  // Per-zone solver configuration. `threads` is overridden to 1 (the
  // zone fan-out already owns the worker pool) and `cache` to null (zone
  // subproblems are keyed differently from global ones).
  IlpSchedulerOptions ilp;
};

// zone_of_node[v] in [0, zone_count) for every NodeId of the partitioned
// graph.
struct ZonePartition {
  int zone_count = 0;
  std::vector<int> zone_of_node;
};

// Deterministic BFS-grown partition into exactly min(zone_count, n) zones
// of near-equal size. Each zone grows breadth-first from the lowest
// unassigned NodeId (neighbors visited in ascending order) until it
// reaches its target share of the remaining nodes; disconnected leftovers
// seed the same zone until the target is met.
ZonePartition partition_zones(const Graph& connectivity, int zone_count);

// Per-zone accounting from a zoned solve.
struct ZoneStats {
  int links = 0;         // links whose transmitter is in the zone
  int border_links = 0;  // of those, links with cross-zone conflicts
  int demanded_links = 0;
  int slots = 0;                // phase-1 schedule length of the zone
  bool proven_minimal = true;   // the zone's min-slot search proved S
};

struct ZonedScheduleResult {
  MeshSchedule schedule;  // composed over all zones; conflict-free
  int frame_slots = 0;    // composed schedule length (max grant end)
  std::vector<int> zone_of_link;   // by LinkId: zone of link.from
  std::vector<bool> border_link;   // by LinkId
  std::vector<ZoneStats> zones;
  int border_links = 0;            // total border links
  int relocated_border_links = 0;  // confirmations that had to move
  // True when every zone's search proved minimality. The composition
  // itself never proves global minimality — zoning trades that proof for
  // tractability.
  bool proven_minimal = true;
};

// Runs the two-phase zoned solve described above. `max_slots` caps both
// the per-zone searches and the composed schedule length; exceeding it
// (or any zone being unschedulable) returns an error.
Expected<ZonedScheduleResult> schedule_zoned(const SchedulingProblem& problem,
                                             const ZonePartition& partition,
                                             int max_slots,
                                             const ZoneOptions& options = {});

}  // namespace wimesh::zones
