#pragma once

// wimesh::admit — online admission control at production rates.
//
// The paper treats the delay-aware ILP as an admission-time tool; this
// module is the long-running service built around it. An AdmissionEngine
// consumes a stream of flow arrival/departure events and answers each
// arrival with admit / degrade / reject, using a staged pipeline that gets
// cheaper the more often it is right:
//
//   0. best-effort arrivals never gate on the guaranteed class — admitted
//      immediately (they are served from leftover slots by construction);
//   1. clique-bound fast reject — the greedy-clique lower bound on the
//      would-be problem already exceeds the data subframe (under overload
//      nearly every arrival dies here, in microseconds);
//   2. incremental schedule repair — keep the incumbent grants (shrunk to
//      the new per-link demands), first-fit the new flow's links into the
//      remaining gaps, and accept if the result validates and meets every
//      delay bound; no LP/ILP work at all;
//   3. cold feasibility solve — exactly the planner call a from-scratch
//      admission controller would make (warm-started ILP through the
//      shared ScheduleCache).
//
// Decision equivalence: every decision matches what the cold oracle
// `plan(active + candidate, kind, ilp, PlanObjective::kFeasibility)` would
// decide, because stage 1 runs the same lower bound the cold path runs
// first, stage 2 only accepts schedules satisfying everything the cold
// path verifies (a feasible schedule exists, so the complete ILP admits
// too), and stage 3 IS the cold path. Both sides pose the problem through
// QosPlanner::build_problem, so the question itself is byte-identical.
// The contract holds for flows whose max_delay spans at least two frames
// (below that the planner's conservative budget clamp decouples the wrap
// budget from the strict delay check) and modulo ILP node/time limits;
// differential_replay() checks it event by event.
//
// Departures are lazy: the departed flow's grants stay in the deployed
// schedule (harmless — survivors keep strictly more room than they need)
// until `compaction_departures` departures accumulate, then survivors are
// re-planned compactly and the new schedule is handed to the data plane,
// activating at the next frame boundary (TdmaOverlayNode::stage_grants).

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "wimesh/metrics/stats.h"
#include "wimesh/qos/planner.h"
#include "wimesh/traffic/sources.h"

namespace wimesh::admit {

// Which stage of the pipeline produced the answer (trace field `c` of
// kAdmitDecision records this value).
enum class DecisionPath : int {
  kBestEffort = 0,  // stage 0: best-effort arrivals never gate
  kFastReject = 1,  // stage 1: clique bound exceeds the data subframe
  kRepair = 2,      // stage 2: incremental repair extended the incumbent
  kFullSolve = 3,   // stage 3: cold feasibility solve (the oracle's path)
};

enum class Outcome : int { kAdmitted = 0, kDegraded = 1, kRejected = 2 };

// Why an arrival was not admitted as requested. Capacity shortfalls are
// kInfeasible; the fault-aware pre-stage distinguishes arrivals the current
// topology epoch cannot serve at all: an endpoint that is crashed
// (kEndpointDown) or endpoints separated by a partition cut (kNoRoute).
enum class RejectReason : int {
  kNone = 0,          // admitted as requested
  kInfeasible = 1,    // capacity / delay infeasibility (stages 1 and 3)
  kEndpointDown = 2,  // an endpoint is dead in the current epoch
  kNoRoute = 3,       // endpoints alive but in different islands
};
const char* reject_reason_name(RejectReason r);

struct Decision {
  Outcome outcome = Outcome::kRejected;
  DecisionPath path = DecisionPath::kFullSolve;
  RejectReason reject = RejectReason::kNone;  // set when not admitted as-is
  std::string reason;           // why, when not admitted as requested
  std::int64_t latency_ns = 0;  // wall clock; reporting only, never decisions
};

struct EngineConfig {
  SchedulerKind scheduler = SchedulerKind::kIlpDelayAware;
  RoutingPolicy routing = RoutingPolicy::kHopCount;
  // Solver options for repair fallbacks and compaction; `.cache` may point
  // at a ScheduleCache shared with other engines / the batch runner (the
  // cache is internally sharded and keys on exact problem bytes, so
  // sharing never changes any answer).
  IlpSchedulerOptions ilp;
  // Serve guaranteed arrivals the solver rejects as best-effort instead of
  // blocking them outright (Outcome::kDegraded).
  bool degrade_on_reject = false;
  // Departures tolerated before survivors are re-planned and the compacted
  // schedule hot-swapped in. <= 0 compacts on every departure.
  int compaction_departures = 8;
};

// What the engine hands the data plane on every schedule change: the new
// grants plus the frame boundary at which every node must adopt them
// (mirrors faults::Deployment; feed TdmaOverlayNode::stage_grants). Only
// the guaranteed skeleton is deployed — best-effort extras are a batch
// planning concern and are re-fitted at the next full solve.
struct Deployment {
  LinkSet links;
  MeshSchedule schedule;
  std::vector<FlowPlan> guaranteed;
  std::int64_t activation_frame = 0;
  SimTime guard{};
  std::uint64_t generation = 0;  // bumped once per hot-swap
};

struct EngineStats {
  std::uint64_t offered = 0;             // all offer() calls
  std::uint64_t guaranteed_offered = 0;  // offers that gate on capacity
  std::uint64_t admitted = 0;
  std::uint64_t degraded = 0;
  std::uint64_t rejected = 0;
  std::uint64_t released = 0;
  // Per-stage counters (admissions/rejections attributed to the stage
  // that answered).
  std::uint64_t best_effort_fast = 0;
  std::uint64_t fast_rejects = 0;
  std::uint64_t repair_admits = 0;
  std::uint64_t full_solves = 0;  // stage-3 invocations (either answer)
  std::uint64_t hot_swaps = 0;
  std::uint64_t compactions = 0;
  // Not-admitted-as-requested counts, by typed cause (degrades count
  // toward the cause that denied the guaranteed request).
  std::uint64_t rejected_infeasible = 0;
  std::uint64_t rejected_endpoint_down = 0;
  std::uint64_t rejected_no_route = 0;
  // Fault-awareness: topology epoch installs and the active flows they
  // evicted (dead endpoint or severed route).
  std::uint64_t epoch_updates = 0;
  std::uint64_t epoch_evictions = 0;
  // Wall-clock latency of every offer() decision, in nanoseconds.
  SampleSet decision_latency_ns;

  // Fraction of capacity-gated offers not admitted as requested.
  double blocking_probability() const {
    return guaranteed_offered == 0
               ? 0.0
               : static_cast<double>(rejected + degraded) /
                     static_cast<double>(guaranteed_offered);
  }
};

class AdmissionEngine {
 public:
  AdmissionEngine(const Topology& topology, const RadioModel& radio,
                  EmulationParams params, PhyMode phy, EngineConfig config);

  // Decides one arrival. `now` is the virtual arrival time (sets the
  // activation frame of any staged schedule change).
  Decision offer(const FlowSpec& flow, SimTime now);

  // Processes one departure; returns false when no active flow has this
  // id. May trigger lazy compaction (and thus a deployment).
  bool release(int flow_id, SimTime now);

  // Forces survivor re-planning and a hot-swap now; returns true when a
  // new schedule was staged. Resets the lazy-departure counter.
  bool compact(SimTime now);

  // Fault-awareness: installs a new topology epoch — `alive` masks the
  // construction topology (dead nodes lose every incident edge but keep
  // their NodeId). Rebuilds the planner over the surviving subgraph,
  // recomputes the island decomposition, evicts active flows the epoch can
  // no longer serve (a dead endpoint, or endpoints separated by a cut) and
  // re-validates the booked set with a survivor re-plan. Subsequent offers
  // fast-reject unservable arrivals with a typed RejectReason before any
  // solver work. Returns the evicted flow ids in ascending order.
  // `down_links` lists additionally-severed undirected edges (hard link
  // outages), as unordered endpoint pairs.
  std::vector<int> set_topology_epoch(
      const std::vector<char>& alive, SimTime now,
      const std::vector<std::pair<NodeId, NodeId>>& down_links = {});
  std::uint64_t topology_epoch() const { return epoch_; }
  // Current island index per node (-1 = dead); empty before the first
  // epoch install (no fault-awareness overhead until then).
  const std::vector<int>& island_of_node() const { return island_of_node_; }

  // Currently admitted flows, in arrival order (degraded arrivals appear
  // with service == kBestEffort).
  const std::vector<FlowSpec>& active() const { return active_; }

  // The incumbent deployed state: the scheduling problem of the flow set
  // at the last adoption and the schedule serving it. Departed flows may
  // still hold grants here until compaction (lazy by design).
  const SchedulingProblem& problem() const { return incumbent_.problem; }
  const MeshSchedule& schedule() const { return incumbent_.schedule; }
  const std::vector<FlowPlan>& guaranteed_plans() const {
    return incumbent_.guaranteed;
  }
  std::uint64_t generation() const { return generation_; }

  // Invariant check (test hook): the incumbent schedule validates against
  // the incumbent problem, and every active guaranteed flow's links are
  // covered by it. Holds after every event, including lazy departures.
  bool live_consistent() const;

  using DeployFn = std::function<void(const Deployment&)>;
  void set_deploy_callback(DeployFn fn) { deploy_ = std::move(fn); }

  const EngineStats& stats() const { return stats_; }
  const QosPlanner& planner() const { return *planner_; }
  const EngineConfig& config() const { return config_; }
  const Topology& topology() const { return topology_; }

 private:
  struct Incumbent {
    SchedulingProblem problem;
    std::vector<FlowPlan> guaranteed;
    MeshSchedule schedule;
  };

  Decision decide(const FlowSpec& flow, SimTime now);
  // Fault-aware pre-stage: rejects `flow` with a typed cause when the
  // current epoch cannot serve it at all; nullopt when it may proceed.
  std::optional<Decision> epoch_gate(const FlowSpec& flow);
  // Stage 2: extend the incumbent to serve `bp` without solving. Keeps
  // every surviving grant (shrunk to the new demand), first-fits grown or
  // new links into the free gaps, and accepts only a schedule that
  // validates and meets every delay bound the cold path would verify.
  std::optional<MeshSchedule> try_repair(const BuiltProblem& bp) const;
  // True when `schedule` satisfies everything plan() verifies after
  // solving: validity, wrap budgets, and strict per-flow delay bounds
  // (the latter two only for the delay-aware scheduler).
  bool acceptable(const SchedulingProblem& problem,
                  const std::vector<FlowPlan>& guaranteed,
                  const MeshSchedule& schedule) const;
  void adopt(Incumbent next, SimTime now, bool compaction);
  Decision not_admitted(const FlowSpec& flow, DecisionPath path,
                        RejectReason why, std::string reason);

  const Topology& topology_;
  EmulationParams params_;
  EngineConfig config_;
  RadioModel radio_;  // kept so the planner can be rebuilt per epoch
  PhyMode phy_;
  // The planner plans over `topology_` until the first epoch install, then
  // over the owned surviving subgraph (QosPlanner holds a topology
  // reference, so the engine must own what an epoch planner points at).
  Topology epoch_topology_;
  std::unique_ptr<QosPlanner> planner_;
  // Fault-awareness state; empty until the first set_topology_epoch (the
  // fault-free fast path pays nothing).
  std::vector<char> alive_;
  std::vector<int> island_of_node_;
  std::uint64_t epoch_ = 0;
  std::vector<FlowSpec> active_;
  Incumbent incumbent_;
  std::uint64_t generation_ = 0;
  int departures_since_compaction_ = 0;
  DeployFn deploy_;
  EngineStats stats_;
};

// ---------------------------------------------------------------------------
// Poisson churn replay — the telephony layer driving the engine.

struct ChurnSpec {
  double arrival_rate_per_s = 10.0;  // Poisson arrivals
  double mean_holding_s = 60.0;      // exponential holding time
  double horizon_s = 600.0;
  // Stop after this many events (arrivals + departures); 0 = horizon only.
  std::uint64_t max_events = 0;
  VoipCodec codec = VoipCodec::g729();
  SimTime max_delay = SimTime::milliseconds(100);
  // Flow endpoints drawn uniformly per arrival. Empty = every ordered
  // (src, 0) pair with src != 0 (gateway convention).
  std::vector<std::pair<NodeId, NodeId>> endpoints;
  // Fraction of arrivals offered as best-effort instead of guaranteed.
  double best_effort_fraction = 0.0;
  std::uint64_t seed = 1;
};

struct ChurnObserver {
  // Called after the engine decided each arrival.
  std::function<void(SimTime, const FlowSpec&, const Decision&)> on_arrival;
  // Called after the engine processed each departure.
  std::function<void(SimTime, int flow_id)> on_departure;
};

struct ChurnResult {
  std::uint64_t events = 0;  // arrivals + departures processed
  std::uint64_t arrivals = 0;
  std::uint64_t departures = 0;
  double mean_carried = 0.0;  // time-average simultaneously active flows
  int peak_carried = 0;
  EngineStats stats;  // engine counters at end of replay
};

// Replays a Poisson arrival / exponential holding process through the
// engine. Deterministic in (spec.seed, spec): random draws happen in a
// fixed order independent of the engine's decisions, so the same spec
// always offers the same flow sequence.
ChurnResult replay_poisson_churn(AdmissionEngine& engine,
                                 const ChurnSpec& spec,
                                 const ChurnObserver* observer = nullptr);

// ---------------------------------------------------------------------------
// Differential harness: engine vs cold full re-solve oracle.

struct DifferentialReport {
  std::uint64_t events = 0;
  std::uint64_t decisions = 0;  // capacity-gated decisions compared
  std::uint64_t mismatches = 0;
  std::uint64_t consistency_failures = 0;  // live_consistent() violations
  std::string first_mismatch;  // human-readable description of the first
  ChurnResult churn;
};

// Replays `spec` through a fresh engine while an independent cold planner
// (no cache, no incumbent) re-decides every capacity-gated arrival from
// scratch; counts decision mismatches and per-event invariant violations.
DifferentialReport differential_replay(const Topology& topology,
                                       const RadioModel& radio,
                                       const EmulationParams& params,
                                       const PhyMode& phy,
                                       const EngineConfig& config,
                                       const ChurnSpec& spec);

}  // namespace wimesh::admit
