#pragma once

// Small string helpers (gcc 12 lacks std::format).

#include <sstream>
#include <string>
#include <vector>

namespace wimesh {

// Concatenates the stream renderings of all arguments.
template <typename... Args>
std::string str_cat(const Args&... args) {
  std::ostringstream os;
  ((os << args), ...);
  return os.str();
}

// Renders a double with fixed precision (default 3 decimals).
std::string fmt_double(double v, int precision = 3);

// Joins items with a separator, e.g. join({"a","b"}, ",") == "a,b".
std::string join(const std::vector<std::string>& items,
                 const std::string& sep);

// Splits on a single-character delimiter; keeps empty fields.
std::vector<std::string> split(const std::string& s, char delim);

}  // namespace wimesh
