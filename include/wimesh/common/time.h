#pragma once

// Simulation time: a strong integer-nanosecond type.
//
// All modules express time as SimTime. Integer nanoseconds keep event
// ordering exact (no floating-point drift across billions of events) while
// giving ~292 years of range, far beyond any simulation horizon used here.

#include <cstdint>
#include <compare>
#include <limits>
#include <string>

namespace wimesh {

class SimTime {
 public:
  constexpr SimTime() = default;

  static constexpr SimTime zero() { return SimTime{0}; }
  static constexpr SimTime max() {
    return SimTime{std::numeric_limits<std::int64_t>::max()};
  }

  static constexpr SimTime nanoseconds(std::int64_t ns) { return SimTime{ns}; }
  static constexpr SimTime microseconds(std::int64_t us) {
    return SimTime{us * 1000};
  }
  static constexpr SimTime milliseconds(std::int64_t ms) {
    return SimTime{ms * 1'000'000};
  }
  static constexpr SimTime seconds(std::int64_t s) {
    return SimTime{s * 1'000'000'000};
  }
  // Converts a floating-point second count, rounding to the nearest ns.
  static constexpr SimTime from_seconds(double s) {
    return SimTime{static_cast<std::int64_t>(s * 1e9 + (s >= 0 ? 0.5 : -0.5))};
  }

  constexpr std::int64_t ns() const { return ns_; }
  constexpr double to_us() const { return static_cast<double>(ns_) / 1e3; }
  constexpr double to_ms() const { return static_cast<double>(ns_) / 1e6; }
  constexpr double to_seconds() const { return static_cast<double>(ns_) / 1e9; }

  friend constexpr auto operator<=>(SimTime, SimTime) = default;

  constexpr SimTime operator+(SimTime o) const { return SimTime{ns_ + o.ns_}; }
  constexpr SimTime operator-(SimTime o) const { return SimTime{ns_ - o.ns_}; }
  constexpr SimTime& operator+=(SimTime o) {
    ns_ += o.ns_;
    return *this;
  }
  constexpr SimTime& operator-=(SimTime o) {
    ns_ -= o.ns_;
    return *this;
  }
  constexpr SimTime operator*(std::int64_t k) const { return SimTime{ns_ * k}; }
  constexpr std::int64_t operator/(SimTime o) const { return ns_ / o.ns_; }
  constexpr SimTime operator/(std::int64_t k) const { return SimTime{ns_ / k}; }
  constexpr SimTime operator%(SimTime o) const { return SimTime{ns_ % o.ns_}; }
  constexpr SimTime operator-() const { return SimTime{-ns_}; }

  // Human-readable rendering with an adaptive unit, e.g. "2.5ms".
  std::string to_string() const;

 private:
  constexpr explicit SimTime(std::int64_t ns) : ns_(ns) {}
  std::int64_t ns_ = 0;
};

constexpr SimTime operator*(std::int64_t k, SimTime t) { return t * k; }

}  // namespace wimesh
