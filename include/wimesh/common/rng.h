#pragma once

// Deterministic random number generation.
//
// Every stochastic component (traffic source, channel error process, clock
// drift, topology generator) owns its own Rng stream so experiments are
// reproducible bit-for-bit and adding one source of randomness never
// perturbs another. Streams are derived from a root seed with split(),
// mirroring the "one stream per entity" discipline used by ns-3.
//
// The generator is xoshiro256**: tiny state, excellent statistical quality,
// and much faster than std::mt19937_64.

#include <array>
#include <cstdint>

#include "wimesh/common/assert.h"

namespace wimesh {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) { reseed(seed); }

  void reseed(std::uint64_t seed);

  // Derives the root seed of an independent stream from (base_seed,
  // stream_index) — the batch runner's per-run streams. Pure function of
  // its arguments, so run i of a sweep draws the same stream no matter
  // which thread executes it or in what order runs complete; distinct
  // indices yield decorrelated streams (SplitMix64 mixing).
  static std::uint64_t derive_stream(std::uint64_t base_seed,
                                     std::uint64_t stream_index);

  // Derives an independent child stream; successive calls yield distinct
  // streams. Deterministic in (parent seed, call order).
  Rng split();

  // Uniform on [0, 2^64).
  std::uint64_t next_u64();

  // Uniform on [0, n). Requires n > 0. Uses rejection sampling (unbiased).
  std::uint64_t next_below(std::uint64_t n);

  // Uniform on [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  // Uniform on [0, 1).
  double uniform();

  // Uniform on [lo, hi).
  double uniform(double lo, double hi);

  // Exponential with the given mean (> 0).
  double exponential(double mean);

  // Standard normal via Marsaglia polar method.
  double normal(double mean, double stddev);

  // Bernoulli trial.
  bool chance(double p);

 private:
  std::array<std::uint64_t, 4> s_{};
  std::uint64_t split_count_ = 0;
  std::uint64_t seed_ = 0;
  bool have_spare_normal_ = false;
  double spare_normal_ = 0.0;
};

}  // namespace wimesh
