#pragma once

// Expected<T>: value-or-error-message result type.
//
// The toolchain (gcc 12, C++20) has no std::expected, so this is a minimal
// stand-in used by fallible APIs (solvers, admission control, parsers) where
// failure is an ordinary outcome rather than a bug. For bugs use
// WIMESH_ASSERT.

#include <string>
#include <utility>
#include <variant>

#include "wimesh/common/assert.h"

namespace wimesh {

// Distinguishes the error string from a T that may itself be a string.
struct Unexpected {
  std::string message;
};

inline Unexpected make_error(std::string message) {
  return Unexpected{std::move(message)};
}

template <typename T>
class Expected {
 public:
  Expected(T value) : data_(std::in_place_index<0>, std::move(value)) {}
  Expected(Unexpected err) : data_(std::in_place_index<1>, std::move(err)) {}

  bool has_value() const { return data_.index() == 0; }
  explicit operator bool() const { return has_value(); }

  const T& value() const& {
    WIMESH_ASSERT_MSG(has_value(), error_or_empty());
    return std::get<0>(data_);
  }
  T& value() & {
    WIMESH_ASSERT_MSG(has_value(), error_or_empty());
    return std::get<0>(data_);
  }
  T&& value() && {
    WIMESH_ASSERT_MSG(has_value(), error_or_empty());
    return std::move(std::get<0>(data_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  const std::string& error() const {
    WIMESH_ASSERT(!has_value());
    return std::get<1>(data_).message;
  }

 private:
  std::string error_or_empty() const {
    return has_value() ? std::string{} : std::get<1>(data_).message;
  }
  std::variant<T, Unexpected> data_;
};

}  // namespace wimesh
