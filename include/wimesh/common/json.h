#pragma once

// Shared JSON string escaping.
//
// Used by every exporter that writes JSON by hand (the batch results
// writer and the trace exporter); one definition keeps the escaping rules
// — and therefore byte-identical outputs — consistent across them.

#include <string>

namespace wimesh {

// Escapes `s` for embedding inside a JSON string literal:
//  - '"' and '\\' are backslash-escaped;
//  - control characters < 0x20 use the short escapes \b \f \n \r \t where
//    JSON defines them and \u00XX otherwise;
//  - bytes >= 0x80 forming valid UTF-8 sequences pass through untouched
//    (JSON is UTF-8); bytes that are not valid UTF-8 are replaced with
//    U+FFFD so the output is always a well-formed JSON document.
// Printable ASCII is returned unchanged, byte for byte.
std::string json_escape(const std::string& s);

}  // namespace wimesh
