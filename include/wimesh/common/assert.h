#pragma once

// Contract checks. WIMESH_ASSERT is always on (simulation correctness beats
// the negligible branch cost); failures print the condition and abort so a
// broken invariant can never silently corrupt an experiment.

#include <string_view>

namespace wimesh::detail {
[[noreturn]] void assert_fail(std::string_view cond, std::string_view file,
                              int line, std::string_view msg);
}  // namespace wimesh::detail

#define WIMESH_ASSERT(cond)                                              \
  do {                                                                   \
    if (!(cond)) [[unlikely]]                                            \
      ::wimesh::detail::assert_fail(#cond, __FILE__, __LINE__, "");      \
  } while (false)

#define WIMESH_ASSERT_MSG(cond, msg)                                     \
  do {                                                                   \
    if (!(cond)) [[unlikely]]                                            \
      ::wimesh::detail::assert_fail(#cond, __FILE__, __LINE__, (msg));   \
  } while (false)
