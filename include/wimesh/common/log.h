#pragma once

// Minimal leveled logger. Off by default above Warn so benchmarks stay
// quiet; tests and examples can raise verbosity per-run.

#include <string>

namespace wimesh {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

void set_log_level(LogLevel level);
LogLevel log_level();

// Writes "[level] component: message\n" to stderr if level is enabled.
void log(LogLevel level, const std::string& component,
         const std::string& message);

inline void log_debug(const std::string& c, const std::string& m) {
  log(LogLevel::kDebug, c, m);
}
inline void log_info(const std::string& c, const std::string& m) {
  log(LogLevel::kInfo, c, m);
}
inline void log_warn(const std::string& c, const std::string& m) {
  log(LogLevel::kWarn, c, m);
}
inline void log_error(const std::string& c, const std::string& m) {
  log(LogLevel::kError, c, m);
}

}  // namespace wimesh
