#pragma once

// Mesh topology generators.
//
// A Topology is a connectivity graph plus 2-D node positions (metres); the
// positions feed the PHY interference model and make experiments plottable.
// Generators cover the layouts used throughout the evaluation: chains (worst
// case for end-to-end delay), grids (typical community mesh), random
// geometric graphs (irregular deployments) and trees rooted at a gateway
// (the 802.16 mesh overlay-tree case).

#include <cstdint>
#include <vector>

#include "wimesh/common/expected.h"
#include "wimesh/common/rng.h"
#include "wimesh/graph/graph.h"

namespace wimesh {

struct Point {
  double x = 0.0;
  double y = 0.0;
};

double distance(const Point& a, const Point& b);

struct Topology {
  Graph graph;
  std::vector<Point> positions;  // indexed by NodeId

  NodeId node_count() const { return graph.node_count(); }
};

// n nodes in a line, consecutive nodes `spacing` metres apart and connected.
Topology make_chain(NodeId n, double spacing = 100.0);

// n nodes on a circle, consecutive nodes connected.
Topology make_ring(NodeId n, double radius = 200.0);

// rows x cols lattice with 4-neighbour connectivity. Dimensions are taken
// as 64-bit so rows * cols is computed without overflow; returns an error
// when either dimension is < 1 or the node count exceeds the NodeId range.
Expected<Topology> try_make_grid(std::int64_t rows, std::int64_t cols,
                                 double spacing = 100.0);

// Assertion-checked convenience wrapper over try_make_grid for callers
// with known-small dimensions.
Topology make_grid(NodeId rows, NodeId cols, double spacing = 100.0);

// n nodes uniform in a side x side square; nodes within `range` metres are
// connected. Re-draws (up to a bounded number of attempts) until the graph
// is connected; asserts if connectivity is unattainable.
Topology make_random_geometric(NodeId n, double side, double range, Rng& rng);

// Balanced tree: each node has `arity` children, `depth` levels below the
// root (root = node 0, the gateway). Positions are laid out by level.
Topology make_tree(NodeId arity, NodeId depth, double spacing = 100.0);

// Breadth-first spanning tree (forest, if g is disconnected) of `g` rooted
// at `root`, returned as parent[v]. kInvalidNode marks both the root and
// any node unreachable from it; use bfs_hops to tell them apart.
std::vector<NodeId> spanning_tree_parents(const Graph& g, NodeId root);

}  // namespace wimesh
