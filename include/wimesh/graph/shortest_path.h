#pragma once

// Shortest-path algorithms over Digraph.

#include <optional>
#include <vector>

#include "wimesh/graph/graph.h"

namespace wimesh {

struct ShortestPathTree {
  // dist[v] — shortest distance from the source (infinity if unreachable).
  std::vector<double> dist;
  // parent_arc[v] — arc used to reach v in the tree (kInvalidEdge at the
  // source and at unreachable nodes).
  std::vector<EdgeId> parent_arc;

  bool reachable(NodeId v) const;
  // Node sequence src…dst; empty if dst is unreachable.
  std::vector<NodeId> path_to(const Digraph& g, NodeId dst) const;
};

// Dijkstra. Requires all arc weights >= 0.
ShortestPathTree dijkstra(const Digraph& g, NodeId src);

struct BellmanFordResult {
  // Filled only when no negative cycle is reachable from the source.
  ShortestPathTree tree;
  bool has_negative_cycle = false;
  // A witness cycle (arc ids, in order) when has_negative_cycle.
  std::vector<EdgeId> negative_cycle;
};

// Bellman–Ford from src; handles negative weights and reports a reachable
// negative cycle if one exists.
BellmanFordResult bellman_ford(const Digraph& g, NodeId src);

// Solves the system of difference constraints  x[to] - x[from] <= weight
// (one inequality per arc) by running Bellman–Ford from a virtual source
// connected to every node with weight 0. Returns a feasible assignment with
// all values <= 0, or nullopt if the system is infeasible (the constraint
// graph has a negative cycle). This is the standard order→slot-offset step
// of delay-aware TDMA scheduling.
std::optional<std::vector<double>> solve_difference_constraints(
    const Digraph& g);

}  // namespace wimesh
