#pragma once

// Graph substrate.
//
// Two lightweight index-based graph types:
//  * Graph   — undirected, used for radio connectivity and conflict graphs.
//  * Digraph — directed with double edge weights, used for routing and for
//              the difference-constraint systems solved by Bellman–Ford when
//              a link transmission order is turned into slot offsets.
//
// Nodes are dense indices [0, node_count()); edges are dense indices too, so
// callers can hang per-edge attributes off plain vectors.

#include <cstdint>
#include <vector>

#include "wimesh/common/assert.h"

namespace wimesh {

using NodeId = std::int32_t;
using EdgeId = std::int32_t;

inline constexpr NodeId kInvalidNode = -1;
inline constexpr EdgeId kInvalidEdge = -1;

class Graph {
 public:
  struct Edge {
    NodeId u = kInvalidNode;
    NodeId v = kInvalidNode;
  };

  Graph() = default;
  explicit Graph(NodeId node_count) { resize(node_count); }

  void resize(NodeId node_count) {
    WIMESH_ASSERT(node_count >= 0);
    adjacency_.resize(static_cast<std::size_t>(node_count));
  }

  NodeId add_node() {
    adjacency_.emplace_back();
    return static_cast<NodeId>(adjacency_.size() - 1);
  }

  // Adds an undirected edge; self-loops and parallel edges are rejected by
  // assertion (neither occurs in radio connectivity graphs).
  EdgeId add_edge(NodeId u, NodeId v);

  NodeId node_count() const { return static_cast<NodeId>(adjacency_.size()); }
  EdgeId edge_count() const { return static_cast<EdgeId>(edges_.size()); }

  const Edge& edge(EdgeId e) const {
    return edges_[static_cast<std::size_t>(e)];
  }

  // Edge ids incident to u.
  const std::vector<EdgeId>& incident(NodeId u) const {
    return adjacency_[static_cast<std::size_t>(u)];
  }

  // Neighbor of u across edge e. Requires u to be an endpoint of e.
  NodeId other_end(EdgeId e, NodeId u) const {
    const Edge& ed = edge(e);
    WIMESH_ASSERT(ed.u == u || ed.v == u);
    return ed.u == u ? ed.v : ed.u;
  }

  bool has_edge(NodeId u, NodeId v) const {
    return find_edge(u, v) != kInvalidEdge;
  }

  // Returns the edge id joining u and v, or kInvalidEdge.
  EdgeId find_edge(NodeId u, NodeId v) const;

  std::vector<NodeId> neighbors(NodeId u) const;

  // Node degree.
  NodeId degree(NodeId u) const {
    return static_cast<NodeId>(incident(u).size());
  }

 private:
  std::vector<Edge> edges_;
  std::vector<std::vector<EdgeId>> adjacency_;
};

class Digraph {
 public:
  struct Arc {
    NodeId from = kInvalidNode;
    NodeId to = kInvalidNode;
    double weight = 0.0;
  };

  Digraph() = default;
  explicit Digraph(NodeId node_count) { resize(node_count); }

  void resize(NodeId node_count) {
    WIMESH_ASSERT(node_count >= 0);
    out_.resize(static_cast<std::size_t>(node_count));
  }

  NodeId add_node() {
    out_.emplace_back();
    return static_cast<NodeId>(out_.size() - 1);
  }

  // Parallel arcs are allowed (difference-constraint systems produce them);
  // shortest-path algorithms simply consider all of them.
  EdgeId add_arc(NodeId from, NodeId to, double weight);

  NodeId node_count() const { return static_cast<NodeId>(out_.size()); }
  EdgeId arc_count() const { return static_cast<EdgeId>(arcs_.size()); }

  const Arc& arc(EdgeId a) const { return arcs_[static_cast<std::size_t>(a)]; }
  const std::vector<EdgeId>& out_arcs(NodeId u) const {
    return out_[static_cast<std::size_t>(u)];
  }
  const std::vector<Arc>& arcs() const { return arcs_; }

 private:
  std::vector<Arc> arcs_;
  std::vector<std::vector<EdgeId>> out_;
};

// Whether the undirected graph is connected (trivially true for <=1 node).
bool is_connected(const Graph& g);

// Breadth-first hop distance from src to every node (-1 if unreachable).
std::vector<int> bfs_hops(const Graph& g, NodeId src);

}  // namespace wimesh
