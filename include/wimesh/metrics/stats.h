#pragma once

// Streaming and sample-based statistics used by every experiment.

#include <cstdint>
#include <string>
#include <vector>

#include "wimesh/common/assert.h"

namespace wimesh {

// Welford online mean/variance plus min/max. O(1) memory.
class RunningStat {
 public:
  void add(double x);

  std::int64_t count() const { return count_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }
  // Sample variance (n-1 denominator); 0 with fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }
  double sum() const { return sum_; }

 private:
  std::int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

// Stores samples for exact quantiles; suitable for per-flow delay series at
// simulation scale (millions of samples at 8 bytes each).
class SampleSet {
 public:
  void add(double x);

  std::size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }
  double mean() const;
  // Exact q-quantile with linear interpolation, q in [0, 1]. Requires at
  // least one sample.
  double quantile(double q) const;
  double median() const { return quantile(0.5); }
  double min() const { return quantile(0.0); }
  double max() const { return quantile(1.0); }

  // Empirical CDF evaluated at the given points: fraction of samples <= x.
  std::vector<double> cdf(const std::vector<double>& points) const;

  const std::vector<double>& samples() const { return samples_; }

 private:
  void ensure_sorted() const;
  std::vector<double> samples_;
  mutable bool sorted_ = true;
};

// Fixed-width-bin histogram over [lo, hi); out-of-range samples clamp into
// the edge bins so nothing is dropped.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);

  std::size_t bin_count() const { return counts_.size(); }
  std::uint64_t bin(std::size_t i) const { return counts_[i]; }
  double bin_lower(std::size_t i) const {
    return lo_ + width_ * static_cast<double>(i);
  }
  std::uint64_t total() const { return total_; }

  // Rows of "bin_lower,count" for CSV output.
  std::string to_csv() const;

 private:
  double lo_;
  double width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

}  // namespace wimesh
