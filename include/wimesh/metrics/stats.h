#pragma once

// Streaming and sample-based statistics used by every experiment.

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "wimesh/common/assert.h"

namespace wimesh {

// Welford online mean/variance plus min/max. O(1) memory.
class RunningStat {
 public:
  void add(double x);

  std::int64_t count() const { return count_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }
  // Sample variance (n-1 denominator); 0 with fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }
  double sum() const { return sum_; }

 private:
  std::int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

// Stores samples for exact quantiles; suitable for per-flow delay series at
// simulation scale (millions of samples at 8 bytes each).
//
// Quantile queries sort lazily into a separate cache, so `samples()` always
// returns the series in insertion order. The cache is built under a mutex
// with double-checked locking: concurrent const readers (e.g. parallel
// batch workers aggregating shared results) are safe. Mutation (`add`) is
// not synchronized against readers — same contract as std::vector.
class SampleSet {
 public:
  SampleSet() = default;
  SampleSet(const SampleSet& o) : samples_(o.samples_) {
    cache_valid_.store(samples_.empty(), std::memory_order_release);
  }
  SampleSet(SampleSet&& o) noexcept : samples_(std::move(o.samples_)) {
    cache_valid_.store(samples_.empty(), std::memory_order_release);
  }
  SampleSet& operator=(const SampleSet& o) {
    if (this != &o) {
      samples_ = o.samples_;
      invalidate_cache();
    }
    return *this;
  }
  SampleSet& operator=(SampleSet&& o) noexcept {
    if (this != &o) {
      samples_ = std::move(o.samples_);
      invalidate_cache();
    }
    return *this;
  }

  void add(double x);

  std::size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }
  double mean() const;
  // Exact q-quantile with linear interpolation, q in [0, 1]. Requires at
  // least one sample.
  double quantile(double q) const;
  double median() const { return quantile(0.5); }
  double min() const { return quantile(0.0); }
  double max() const { return quantile(1.0); }

  // Empirical CDF evaluated at the given points: fraction of samples <= x.
  std::vector<double> cdf(const std::vector<double>& points) const;

  // Samples in insertion order.
  const std::vector<double>& samples() const { return samples_; }

 private:
  const std::vector<double>& sorted() const;
  void invalidate_cache() {
    sorted_cache_.clear();
    cache_valid_.store(false, std::memory_order_release);
  }

  std::vector<double> samples_;
  mutable std::mutex cache_mutex_;
  mutable std::atomic<bool> cache_valid_{true};  // empty cache matches empty
  mutable std::vector<double> sorted_cache_;
};

// Fixed-width-bin histogram over [lo, hi). Out-of-range samples are counted
// in dedicated underflow/overflow counters instead of being silently folded
// into the edge bins, so the edge bins mean what their bounds say and a
// mis-sized range is visible in the output.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);

  std::size_t bin_count() const { return counts_.size(); }
  std::uint64_t bin(std::size_t i) const { return counts_[i]; }
  double bin_lower(std::size_t i) const {
    return lo_ + width_ * static_cast<double>(i);
  }
  // All samples ever added, including out-of-range ones.
  std::uint64_t total() const { return total_; }
  std::uint64_t underflow() const { return underflow_; }
  std::uint64_t overflow() const { return overflow_; }

  // Rows of "bin_lower,count" for CSV output, followed by "underflow,N" /
  // "overflow,N" rows when either counter is nonzero.
  std::string to_csv() const;

 private:
  double lo_;
  double width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
};

}  // namespace wimesh
