#pragma once

// Per-flow QoS measurement: throughput, end-to-end delay, jitter, loss.

#include <cmath>
#include <cstdint>

#include "wimesh/common/time.h"
#include "wimesh/metrics/stats.h"

namespace wimesh {

// Collects one flow's packet-level results. Call on_sent at the source and
// on_delivered at the sink; undelivered packets are counted as lost when
// loss is queried after the run.
class FlowStats {
 public:
  void on_sent(std::uint64_t bytes) {
    ++sent_packets_;
    sent_bytes_ += bytes;
  }

  void on_delivered(std::uint64_t bytes, SimTime delay) {
    ++delivered_packets_;
    delivered_bytes_ += bytes;
    delays_.add(delay.to_ms());
    if (have_last_delay_) {
      // RFC 3550-style jitter input: |D_i - D_{i-1}|.
      jitter_ms_.add(std::abs(delay.to_ms() - last_delay_ms_));
    }
    last_delay_ms_ = delay.to_ms();
    have_last_delay_ = true;
  }

  std::uint64_t sent_packets() const { return sent_packets_; }
  std::uint64_t delivered_packets() const { return delivered_packets_; }
  std::uint64_t sent_bytes() const { return sent_bytes_; }
  std::uint64_t delivered_bytes() const { return delivered_bytes_; }

  // Fraction of sent packets not delivered, in [0, 1].
  double loss_rate() const {
    if (sent_packets_ == 0) return 0.0;
    return 1.0 - static_cast<double>(delivered_packets_) /
                     static_cast<double>(sent_packets_);
  }

  // Goodput over the measurement interval, bits per second.
  double throughput_bps(SimTime interval) const {
    if (interval <= SimTime::zero()) return 0.0;
    return static_cast<double>(delivered_bytes_) * 8.0 /
           interval.to_seconds();
  }

  // Delay distribution in milliseconds.
  const SampleSet& delays_ms() const { return delays_; }
  // Mean inter-packet delay variation in milliseconds.
  double mean_jitter_ms() const { return jitter_ms_.mean(); }

 private:
  std::uint64_t sent_packets_ = 0;
  std::uint64_t delivered_packets_ = 0;
  std::uint64_t sent_bytes_ = 0;
  std::uint64_t delivered_bytes_ = 0;
  SampleSet delays_;
  RunningStat jitter_ms_;
  double last_delay_ms_ = 0.0;
  bool have_last_delay_ = false;
};

}  // namespace wimesh
