#pragma once

// Work-stealing parallel executor for independent indexed jobs.
//
// The batch layer's unit of work is "run simulation i" — jobs are coarse
// (milliseconds to seconds each) and independent, but far from uniform:
// an ILP that hits branch & bound can cost 100x a cache-hit run. Static
// striping would leave workers idle behind one slow stripe, so each worker
// owns a deque seeded with a contiguous stripe of indices, pops from its
// own front, and steals from the back of the busiest victim when empty.
// Job indices say nothing about where results go — callers write to
// per-index slots — so stealing never perturbs output order.

#include <cstddef>
#include <functional>

namespace wimesh::exec {

// Threads actually worth using for `count` jobs given the --jobs request:
// at least 1, at most count.
int effective_jobs(int requested, std::size_t count);

// Runs fn(i) for every i in [0, count) on `jobs` threads (the calling
// thread is one of them). Returns when every job has finished. `fn` must
// be safe to call concurrently for distinct indices; each index is
// executed exactly once. The first exception thrown by any job is
// rethrown on the caller after all workers stop picking up new work.
void run_indexed(int jobs, std::size_t count,
                 const std::function<void(std::size_t)>& fn);

}  // namespace wimesh::exec
