#pragma once

// Fault-injection runtime: applies a FaultPlan to a running simulation and
// drives the recovery paths the paper's guarantees depend on.
//
//  * Node crash/recover — the node's radio goes silent (WifiChannel
//    liveness), its overlay freezes, and every flow routed through it is
//    interrupted until the schedule is repaired around it.
//  * Sync-master failure — resync waves stop and clocks free-run; recovery
//    re-roots the spanning tree at the lowest-id surviving node that has
//    not already failed as master and re-dimensions the guard for the new
//    tree depth.
//  * Link outage / Gilbert–Elliott burst — installed as a channel
//    impairment; hard outages trigger schedule repair, bursts are left to
//    MAC retries.
//  * Schedule repair — QosPlanner replans over the surviving topology.
//    Flows whose endpoints are dead or unreachable are excluded; if the
//    survivors still do not fit, the degradation policy sheds guaranteed
//    flows one at a time — video-class flows before VoIP, newest (highest
//    id) first within a class — until the plan is feasible. The repaired
//    schedule is handed to the embedder through Callbacks::deploy for a
//    hot-swap at the next frame boundary.
//  * Partition tolerance — when faults cut the surviving mesh into several
//    connected components ("islands"), each island elects a deterministic
//    master (lowest surviving NodeId not already failed as master), the
//    sync tree becomes a forest (SyncProtocol::re_root_forest) and the
//    islands' schedules are planned in parallel by feeding the island
//    membership to wimesh::zones as an explicit partition — islands are
//    fault-induced zones, and the zones border pass resolves cross-island
//    interference. Flows whose route crosses a cut are severed (typed
//    "partitioned", never silently broken). When a later recovery merges
//    the islands back into one component, the first post-heal plan runs
//    the same two-phase border reconciliation over the pre-heal island
//    membership, hot-swaps the composed schedule at a frame boundary and
//    re-admits severed flows in deterministic declaration order.
//
// Around each fault and each swap the runtime opens an audit waive window
// (InvariantAuditor::waive_until); outside those windows the audit
// contract is unchanged, which is exactly the "green outside declared
// outage windows" guarantee bench_fault_recovery checks.

#include <cstdint>
#include <deque>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "wimesh/audit/auditor.h"
#include "wimesh/faults/impairment.h"
#include "wimesh/faults/plan.h"
#include "wimesh/qos/planner.h"
#include "wimesh/sync/sync.h"
#include "wimesh/wifi/channel.h"

namespace wimesh::faults {

// A repaired plan ready to hot-swap. `plan` stays owned by (and valid
// inside) the FaultRuntime for the rest of the run.
struct Deployment {
  const MeshPlan* plan = nullptr;
  SimTime guard{};                   // possibly re-dimensioned
  std::int64_t activation_frame = 0; // first frame under the new plan
  SimTime activation_time{};         // its global frame-start instant
  std::vector<int> shed_flow_ids;    // shed in this repair, degradation order
};

struct Callbacks {
  // Stage `d` into the overlays and swap the live plan at
  // d.activation_time (a frame boundary). TDMA mode only.
  std::function<void(const Deployment&)> deploy;
  // A node's liveness changed (crash or recovery).
  std::function<void(NodeId, bool up)> node_up_changed;
};

// Everything the planner needs to replan, decomposed from MeshConfig so
// the faults module does not depend on core.
struct PlannerInputs {
  double comm_range = 110.0;
  double interference_range = 220.0;
  PhyMode phy = PhyMode::ofdm_802_11a(54);
  EmulationParams emulation;  // guard already resolved
  RoutingPolicy routing = RoutingPolicy::kHopCount;
  SchedulerKind scheduler = SchedulerKind::kIlpDelayAware;
  IlpSchedulerOptions ilp;
};

class FaultRuntime {
 public:
  // `sync` and `auditor` may be null (non-TDMA mode / audit off);
  // `initial_plan`, `topology` and `channel` must outlive the runtime.
  FaultRuntime(Simulator& sim, FaultPlan plan, const Topology& topology,
               PlannerInputs planner_inputs, std::vector<FlowSpec> flows,
               const MeshPlan* initial_plan, bool tdma, WifiChannel& channel,
               SyncProtocol* sync, audit::InvariantAuditor* auditor,
               Rng rng, Callbacks callbacks);

  // Installs the channel impairment, registers PER bursts and schedules
  // every fault event. Call once, before Simulator::run_until.
  void start();

  // Runner hook: a packet of `flow_id` reached its destination. Closes the
  // flow's open outage window, if any.
  void on_flow_delivered(int flow_id);

  // True while `node` is crashed (the runner drops, rather than queues,
  // traffic sourced at a dead node).
  bool node_up(NodeId node) const {
    return alive_[static_cast<std::size_t>(node)] != 0;
  }

  // True while the flow's endpoints are alive but in different islands —
  // its route crosses a partition cut. The runner types such drops as
  // DropReason::kPartitioned instead of a generic no-route/no-capacity.
  bool flow_severed(int flow_id) const {
    return severed_ids_.count(flow_id) != 0;
  }

  // Current island count (1 = connected survivors) and per-node island
  // index (-1 for dead nodes); refreshed by every recovery pass.
  int islands() const { return islands_; }
  const std::vector<int>& island_of_node() const { return island_of_node_; }

  // The plan traffic should be forwarded under right now (the original
  // until the first hot-swap activates).
  const MeshPlan* live_plan() const { return current_plan_; }

  // Finalizes outage bookkeeping (open windows are charged up to `end`)
  // and returns the continuity metrics.
  FaultReport take_report(SimTime end);

 private:
  void apply(const FaultEvent& event);
  void schedule_recovery(SimTime fault_at);
  void run_recovery(SimTime fault_at);
  // Surviving topology: original nodes, minus edges with a dead endpoint
  // or an injected hard outage (dead nodes stay as isolated vertices so
  // NodeIds keep their meaning).
  Topology build_survivors() const;
  // Refreshes island_of_node_/islands_/severed_ids_ from `survivors` and
  // records the partition metrics. Returns the previous island membership
  // (for the heal-time merge partition).
  std::vector<int> decompose_islands(const Topology& survivors);
  // Elects one master per island: the current master keeps its island when
  // it is alive and healthy; otherwise the lowest surviving NodeId not yet
  // failed as master, falling back to the lowest surviving NodeId.
  std::vector<NodeId> elect_island_masters() const;
  void repair_schedule(SimTime fault_at, const Topology& survivors,
                       int prev_islands,
                       const std::vector<int>& prev_island_of_node);
  void open_outages_through(NodeId node, SimTime now);
  void open_outages_on_link(NodeId a, NodeId b, SimTime now);
  void open_outage(int flow_id, SimTime now);
  void waive(SimTime until);

  Simulator& sim_;
  FaultPlan plan_;
  const Topology& topology_;
  PlannerInputs inputs_;
  std::vector<FlowSpec> flows_;  // the declared (pre-fault) flow set
  bool tdma_;
  WifiChannel& channel_;
  SyncProtocol* sync_;
  audit::InvariantAuditor* auditor_;
  LinkImpairment impairment_;
  Callbacks callbacks_;

  std::vector<char> alive_;
  std::vector<char> failed_masters_;
  const MeshPlan* current_plan_;
  // Repaired plans; deque so deployed pointers stay stable.
  std::deque<MeshPlan> repaired_plans_;

  // Partition state, refreshed by every recovery pass.
  int islands_ = 1;
  std::vector<int> island_of_node_;        // -1 = dead
  std::vector<NodeId> island_masters_;     // by island index
  std::unordered_set<int> severed_ids_;    // flows crossing a cut right now
  std::unordered_set<int> ever_severed_;   // guaranteed flows ever severed

  FaultReport report_;
  std::unordered_map<int, std::size_t> open_outage_;  // flow id -> index
  std::unordered_map<int, SimTime> last_delivery_;
};

}  // namespace wimesh::faults
