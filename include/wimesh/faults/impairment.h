#pragma once

// Channel impairments driven by the fault plan: hard link outages and
// Gilbert–Elliott PER bursts, keyed by unordered node pair. Implements the
// WifiChannel's ChannelImpairment hook; draws from its own RNG stream so
// installing it never perturbs the channel's Bernoulli error process.

#include <cstdint>
#include <vector>

#include "wimesh/common/rng.h"
#include "wimesh/faults/plan.h"
#include "wimesh/wifi/channel.h"

namespace wimesh::faults {

class LinkImpairment final : public ChannelImpairment {
 public:
  explicit LinkImpairment(Rng rng) : rng_(rng) {}

  // Registers a Gilbert–Elliott burst on the pair for [from, until).
  void add_burst(NodeId a, NodeId b, SimTime from, SimTime until,
                 GilbertElliottParams params);

  // Hard outage: while down, every delivery attempt on the pair fails
  // (drawing no randomness, so outages are schedule-independent).
  void set_link_down(NodeId a, NodeId b, bool down);
  bool link_down(NodeId a, NodeId b) const;

  bool corrupts(NodeId tx, NodeId rx, SimTime now) override;

 private:
  struct Burst {
    std::uint64_t pair = 0;
    SimTime from{};
    SimTime until{};
    GilbertElliottParams params;
    bool bad = false;  // current chain state
  };

  static std::uint64_t pair_key(NodeId a, NodeId b);

  std::vector<Burst> bursts_;
  std::vector<std::uint64_t> down_pairs_;
  Rng rng_;
};

}  // namespace wimesh::faults
