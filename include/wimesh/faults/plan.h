#pragma once

// Scripted fault injection for the mesh emulation.
//
// A FaultPlan is a list of typed events on the simulation clock — node
// crashes and recoveries, sync-master failure, link outages, Gilbert–
// Elliott PER bursts, and clock steps — parsed from the scenario key
// `fault =` or the CLI flag `--faults`. The plan itself is pure data; the
// runtime that applies it (and drives the recovery paths: sync failover,
// schedule repair, degradation) lives in wimesh/faults/runtime.h.
//
// Grammar (events separated by ';', arguments by spaces):
//
//   node-crash@T node=N            crash node N at T seconds
//   node-recover@T node=N          bring node N back up
//   master-fail@T                  the sync master's beacon process dies
//   link-down@T link=A-B           link A<->B goes dark (both directions)
//   link-up@T link=A-B             link A<->B comes back
//   burst@T1..T2 link=A-B [p_gb=0.2] [p_bg=0.3] [per_good=0] [per_bad=1]
//                                  Gilbert–Elliott PER burst on A<->B
//   clock-step@T node=N step_us=U  add U microseconds to node N's clock
//   detect_ms=D                    plan-wide failure-detection delay
//
// Structural events (crash/recover/master-fail/link-down/link-up) trigger
// recovery `detect_ms` later; bursts and clock steps are transient and are
// absorbed by MAC retries and the next resync wave respectively.

#include <cstdint>
#include <string>
#include <vector>

#include "wimesh/common/expected.h"
#include "wimesh/common/time.h"
#include "wimesh/graph/graph.h"

namespace wimesh::faults {

enum class FaultKind : std::uint8_t {
  kNodeCrash,
  kNodeRecover,
  kMasterFail,
  kLinkDown,
  kLinkUp,
  kLinkBurst,
  kClockStep,
};
const char* fault_kind_name(FaultKind k);

// Two-state Markov packet-error process: each delivery attempt first moves
// the chain (good->bad with p_good_to_bad, bad->good with p_bad_to_good),
// then errors with the state's PER. Defaults model a hard burst.
//
// Derived behavior, pinned by the seeded statistical suite in
// faults_test.cpp (chi-square on the burst-length distribution plus
// occupancy/loss-rate checks):
//  * steady-state bad occupancy  P(bad) = p_g2b / (p_g2b + p_b2g);
//  * bad dwells are geometric with mean 1/p_b2g attempts — with
//    per_bad = 1 and per_good = 0 that is exactly the mean length of an
//    observed loss burst;
//  * long-run loss rate = P(bad)*per_bad + P(good)*per_good.
// The chain advances once per delivery attempt (not per unit time), so
// "burst length" is measured in frames offered to the link.
struct GilbertElliottParams {
  double p_good_to_bad = 0.2;   // per-attempt escape rate of the good state
  double p_bad_to_good = 0.3;   // per-attempt escape rate of the bad state
  double per_good = 0.0;        // loss probability while good
  double per_bad = 1.0;         // loss probability while bad
};

struct FaultEvent {
  FaultKind kind{};
  SimTime at{};
  NodeId node = kInvalidNode;   // node-crash / node-recover / clock-step
  NodeId link_a = kInvalidNode; // link events: unordered endpoint pair
  NodeId link_b = kInvalidNode;
  SimTime until{};              // burst window end
  SimTime step{};               // clock-step offset (signed)
  GilbertElliottParams ge;      // burst parameters
};

struct FaultPlan {
  std::vector<FaultEvent> events;  // sorted by `at` (stable)
  // How long the mesh takes to notice a structural failure and start
  // recovery (failure-detection timers in a real deployment).
  SimTime detection_delay = SimTime::milliseconds(100);

  bool enabled() const { return !events.empty(); }
};

// Parses the grammar above. Errors are typed and name the offending event
// and key, e.g. "fault 'node-crash@4': unknown key 'nod'".
//
// Contradictory scripts are rejected rather than silently last-wins
// resolved; the error names the offending event and its 1-based position
// in the script, e.g. "fault 'node-crash@5' (event 3): node 2 is already
// crashed". Checked contradictions:
//   * node-crash of a node that is already crashed,
//   * link-up for a link that is not down at that point,
//   * two Gilbert–Elliott bursts with overlapping windows on one link.
Expected<FaultPlan> parse_fault_plan(const std::string& spec);

// One guaranteed flow's service interruption. Opened when a structural
// fault is applied, closed by the first delivery after it; a flow the
// degradation policy sheds never closes and is marked instead.
struct FlowOutageRecord {
  int flow_id = -1;
  SimTime interrupted_at{};         // fault application time
  SimTime last_delivery_before{};   // last delivery seen before the fault
  SimTime restored_at{};            // zero = never restored
  SimTime outage{};                 // restored_at - interrupted_at (or
                                    // run end - interrupted_at if never)
  bool shed = false;                // dropped by the degradation policy
  bool partitioned = false;         // shed because its route crossed a cut

  bool restored() const { return restored_at > SimTime::zero(); }
};

// One recovery pass's partition outcome, appended per repair so an
// external oracle (wimesh::chaos) can replay connectivity independently
// and cross-check island decomposition and master election.
struct RepairRecord {
  SimTime at{};                  // fault time that triggered the repair
  SimTime activation{};          // frame boundary the new plan went live
  int islands = 1;               // connected components over survivors
  std::vector<NodeId> masters;   // elected per-island masters (ascending)
  int flows_planned = 0;         // guaranteed flows in the repaired plan
  int flows_severed = 0;         // guaranteed flows crossing a cut
};

// Continuity metrics for one simulation run, carried in SimulationResult.
struct FaultReport {
  bool enabled = false;
  int events_applied = 0;
  int repairs = 0;    // repaired schedules hot-swapped into the overlay
  int failovers = 0;  // sync-master re-roots
  SimTime last_fault_at{};
  SimTime last_repair_at{};   // activation frame boundary of the last swap
  SimTime repair_latency{};   // last_repair_at - its triggering fault
  // Worst restore latency over restored (non-shed) guaranteed flows.
  SimTime time_to_restore{};
  int flows_preserved = 0;    // guaranteed flows admitted by the final plan
  int flows_shed = 0;         // guaranteed flows shed to regain feasibility
  // Partition lifecycle (all zero/one unless a fault actually split the
  // mesh): peak island count, heal merges (island count returning to 1),
  // and guaranteed flows that were severed by a cut at some point.
  int max_islands = 1;
  int heals = 0;
  int flows_partitioned = 0;
  std::vector<FlowOutageRecord> outages;
  std::vector<RepairRecord> repair_history;

  std::string summary() const;
};

}  // namespace wimesh::faults
