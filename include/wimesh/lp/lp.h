#pragma once

// Linear programming substrate.
//
// The paper's scheduler solves binary integer programs; no external solver
// (CBC/GLPK/CPLEX) is available offline, so this module implements the LP
// relaxation engine from scratch: a dense two-phase primal simplex with
// general variable bounds (so binary 0/1 bounds cost nothing extra), bound
// flips, and Bland anti-cycling fallback. The ILP branch & bound in
// wimesh/ilp sits on top.
//
// Problem form:
//   minimize / maximize   c'x
//   subject to            lhs_i : a_i'x (<= | = | >=) rhs_i
//                         lo_j <= x_j <= up_j   (either side may be infinite)

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "wimesh/common/assert.h"

namespace wimesh {

inline constexpr double kLpInfinity = std::numeric_limits<double>::infinity();

using VarId = int;
using RowId = int;

enum class RowSense { kLessEqual, kEqual, kGreaterEqual };
enum class ObjSense { kMinimize, kMaximize };

struct LpTerm {
  VarId var = -1;
  double coef = 0.0;
};

// A linear model, shared by the LP solver and the ILP layer (which adds
// integrality marks on top).
class LpModel {
 public:
  // Adds a variable with bounds [lo, up] and objective coefficient obj.
  VarId add_variable(double lo, double up, double obj, std::string name = "");

  // Adds a constraint  sum(terms) sense rhs. Terms may repeat a variable
  // (coefficients are summed).
  RowId add_constraint(const std::vector<LpTerm>& terms, RowSense sense,
                       double rhs, std::string name = "");

  void set_objective_sense(ObjSense sense) { obj_sense_ = sense; }
  ObjSense objective_sense() const { return obj_sense_; }

  // Tightens (replaces) the bounds of an existing variable.
  void set_bounds(VarId v, double lo, double up);

  int variable_count() const { return static_cast<int>(vars_.size()); }
  int constraint_count() const { return static_cast<int>(rows_.size()); }

  double lower_bound(VarId v) const { return vars_[check_var(v)].lo; }
  double upper_bound(VarId v) const { return vars_[check_var(v)].up; }
  double objective_coef(VarId v) const { return vars_[check_var(v)].obj; }
  const std::string& variable_name(VarId v) const {
    return vars_[check_var(v)].name;
  }

  struct Row {
    std::vector<LpTerm> terms;
    RowSense sense = RowSense::kLessEqual;
    double rhs = 0.0;
    std::string name;
  };
  const Row& row(RowId r) const {
    WIMESH_ASSERT(r >= 0 && r < constraint_count());
    return rows_[static_cast<std::size_t>(r)];
  }

  // Objective value of a given assignment (no feasibility check).
  double objective_value(const std::vector<double>& x) const;

  // Max constraint violation + max bound violation of an assignment.
  double max_violation(const std::vector<double>& x) const;

 private:
  struct Var {
    double lo = 0.0;
    double up = kLpInfinity;
    double obj = 0.0;
    std::string name;
  };

  std::size_t check_var(VarId v) const {
    WIMESH_ASSERT(v >= 0 && v < variable_count());
    return static_cast<std::size_t>(v);
  }

  std::vector<Var> vars_;
  std::vector<Row> rows_;
  ObjSense obj_sense_ = ObjSense::kMinimize;
};

enum class LpStatus {
  kOptimal,
  kInfeasible,
  kUnbounded,
  kIterationLimit,
};

// Simplex basis snapshot over the structural and slack columns (variables
// first, then one slack per row). Captured from an optimal solve and fed
// back into a later solve of a model with the SAME dimensions — typically
// the parent node's basis in branch & bound, or the previous stage of the
// min-slot linear search. Coefficients, bounds and right-hand sides may
// all differ between the two models; only variable_count/constraint_count
// must match. A stale or singular basis is detected and falls back to a
// cold start, so warm starting is always safe, merely sometimes useless.
enum class LpVarStatus : std::uint8_t { kBasic = 0, kAtLower, kAtUpper, kFree };

struct LpBasis {
  std::vector<LpVarStatus> status;  // n + m entries: structural, then slack
  std::vector<std::int32_t> basic;  // per row: column basic in that row
  bool empty() const { return basic.empty(); }
};

struct LpResult {
  LpStatus status = LpStatus::kInfeasible;
  double objective = 0.0;       // valid when kOptimal
  std::vector<double> x;        // primal values, valid when kOptimal
  long iterations = 0;          // simplex pivots performed
  bool warm_start_used = false; // true when a supplied basis was installed
};

struct LpOptions {
  long max_iterations = 200'000;
  double feasibility_tol = 1e-7;
  double optimality_tol = 1e-9;
};

// Solves the LP. Deterministic; no randomness.
LpResult solve_lp(const LpModel& model, const LpOptions& options = {});

// Warm-started solve: when `warm_start` is non-null, non-empty and
// installable, the simplex starts from that basis (restoring primal
// feasibility with a dual-simplex pass when the basis is dual-feasible but
// primal-infeasible) instead of running phase 1 from scratch; otherwise it
// silently cold-starts. When `basis_out` is non-null and the solve ends
// kOptimal, the final basis is stored there for reuse (left empty when
// the optimal basis still contains an artificial column).
LpResult solve_lp(const LpModel& model, const LpOptions& options,
                  const LpBasis* warm_start, LpBasis* basis_out);

}  // namespace wimesh
