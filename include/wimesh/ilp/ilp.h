#pragma once

// Integer linear programming via branch & bound on the simplex LP relaxation
// (wimesh/lp). Supports the binary "transmission order" programs the paper's
// scheduler solves, plus general bounded integers.
//
// Typical use by the scheduler:
//   IlpModel m;
//   VarId o = m.add_binary("order_ab");
//   VarId s = m.add_continuous(0, frame_slots, 0.0, "start_ab");
//   m.add_constraint({{s, 1.0}, {o, big_m}}, RowSense::kLessEqual, rhs);
//   IlpResult r = solve_ilp(m, opts);

#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "wimesh/lp/lp.h"

namespace wimesh {

class IlpModel {
 public:
  // Continuous variable with bounds [lo, up] and objective coefficient obj.
  VarId add_continuous(double lo, double up, double obj,
                       std::string name = "");

  // Integer variable with inclusive bounds [lo, up].
  VarId add_integer(double lo, double up, double obj, std::string name = "");

  // Binary {0, 1} variable.
  VarId add_binary(double obj = 0.0, std::string name = "");

  RowId add_constraint(const std::vector<LpTerm>& terms, RowSense sense,
                       double rhs, std::string name = "") {
    return lp_.add_constraint(terms, sense, rhs, std::move(name));
  }

  void set_objective_sense(ObjSense sense) { lp_.set_objective_sense(sense); }

  const LpModel& lp() const { return lp_; }
  LpModel& lp() { return lp_; }
  const std::vector<VarId>& integer_vars() const { return integer_vars_; }
  bool is_integer_var(VarId v) const;

  // Branching priority (higher = branched earlier among fractional
  // variables; default 0). Letting the modeller mark the most constraining
  // binaries cuts tree size dramatically on disjunctive programs.
  void set_branch_priority(VarId v, double priority);
  double branch_priority(VarId v) const;

  int variable_count() const { return lp_.variable_count(); }
  int constraint_count() const { return lp_.constraint_count(); }

 private:
  LpModel lp_;
  std::vector<VarId> integer_vars_;
  std::vector<double> priorities_;  // parallel to lp_ variables
};

enum class IlpStatus {
  kOptimal,       // proven optimal incumbent
  kFeasible,      // incumbent found but search stopped early (limits)
  kInfeasible,    // proven: no integer-feasible point
  kLimitReached,  // limits hit with no incumbent — feasibility unknown
};

struct IlpResult {
  IlpStatus status = IlpStatus::kLimitReached;
  double objective = 0.0;       // incumbent objective (when an incumbent exists)
  std::vector<double> x;        // incumbent point (integers snapped exactly)
  long nodes_explored = 0;      // LP relaxations solved, summed over strategies
  long lp_iterations = 0;       // total simplex pivots across all nodes
  // True dual bound on the optimum (in the model's objective sense): for a
  // maximization, objective <= optimum <= best_bound; for a minimization,
  // best_bound <= optimum <= objective. Equal to the objective only when
  // the search actually proved optimality.
  double best_bound = 0.0;
  int winning_strategy = 0;     // portfolio strategy that produced x
  long rounds = 0;              // synchronized portfolio rounds executed
  std::vector<long> nodes_per_strategy;  // per-strategy node counts
  long warm_start_hits = 0;     // node LPs that reused the parent basis
  long warm_start_attempts = 0; // node LPs offered a parent basis

  bool has_solution() const {
    return status == IlpStatus::kOptimal || status == IlpStatus::kFeasible;
  }

  // Relative optimality gap |objective - best_bound| / max(1, |objective|).
  // Zero when optimality was proven; +inf when there is no incumbent.
  double gap() const {
    if (!has_solution()) return std::numeric_limits<double>::infinity();
    return std::abs(objective - best_bound) /
           std::max(1.0, std::abs(objective));
  }
};

struct IlpOptions {
  long max_nodes = 200'000;
  double time_limit_seconds = 60.0;
  // Stop as soon as any integer-feasible point is found. This is what the
  // schedule-length linear search uses: each stage is a pure feasibility
  // program.
  bool stop_at_first_feasible = false;
  double integrality_tol = 1e-6;
  // Prune nodes whose LP bound cannot beat the incumbent by more than this
  // (set to ~1 when the objective is integral to prune aggressively).
  double objective_gap_tol = 1e-9;
  LpOptions lp;

  // --- Portfolio branch & bound ---
  // Number of independent search strategies explored in synchronized
  // rounds (clamped to [1, 4]). Strategies differ in branching rule and
  // dive direction; incumbents are shared at round barriers, and the
  // returned solution is selected deterministically (best objective, ties
  // to the lowest strategy index), so the result is bit-identical for any
  // `threads` value. Strategy 0 is the classic priority/most-fractional
  // depth-first dive.
  int portfolio = 4;
  // Worker threads used to run the strategies of one round concurrently.
  // Purely a wall-clock knob: results do not depend on it (the time limit,
  // as always, can stop the search at a nondeterministic point).
  int threads = 1;
  // Reuse each parent node's optimal LP basis to warm-start its children
  // (dual-simplex repair instead of a fresh phase 1).
  bool warm_start = true;
  // Optional warm basis for the root LP (e.g. from the previous stage of a
  // linear search over schedule lengths), and a slot to receive this
  // solve's optimal root basis. Both may be null; `root_basis_out` is left
  // empty when the root relaxation was not solved to optimality.
  const LpBasis* root_basis = nullptr;
  LpBasis* root_basis_out = nullptr;
};

IlpResult solve_ilp(const IlpModel& model, const IlpOptions& options = {});

}  // namespace wimesh
