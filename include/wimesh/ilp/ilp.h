#pragma once

// Integer linear programming via branch & bound on the simplex LP relaxation
// (wimesh/lp). Supports the binary "transmission order" programs the paper's
// scheduler solves, plus general bounded integers.
//
// Typical use by the scheduler:
//   IlpModel m;
//   VarId o = m.add_binary("order_ab");
//   VarId s = m.add_continuous(0, frame_slots, 0.0, "start_ab");
//   m.add_constraint({{s, 1.0}, {o, big_m}}, RowSense::kLessEqual, rhs);
//   IlpResult r = solve_ilp(m, opts);

#include <cstdint>
#include <string>
#include <vector>

#include "wimesh/lp/lp.h"

namespace wimesh {

class IlpModel {
 public:
  // Continuous variable with bounds [lo, up] and objective coefficient obj.
  VarId add_continuous(double lo, double up, double obj,
                       std::string name = "");

  // Integer variable with inclusive bounds [lo, up].
  VarId add_integer(double lo, double up, double obj, std::string name = "");

  // Binary {0, 1} variable.
  VarId add_binary(double obj = 0.0, std::string name = "");

  RowId add_constraint(const std::vector<LpTerm>& terms, RowSense sense,
                       double rhs, std::string name = "") {
    return lp_.add_constraint(terms, sense, rhs, std::move(name));
  }

  void set_objective_sense(ObjSense sense) { lp_.set_objective_sense(sense); }

  const LpModel& lp() const { return lp_; }
  LpModel& lp() { return lp_; }
  const std::vector<VarId>& integer_vars() const { return integer_vars_; }
  bool is_integer_var(VarId v) const;

  // Branching priority (higher = branched earlier among fractional
  // variables; default 0). Letting the modeller mark the most constraining
  // binaries cuts tree size dramatically on disjunctive programs.
  void set_branch_priority(VarId v, double priority);
  double branch_priority(VarId v) const;

  int variable_count() const { return lp_.variable_count(); }
  int constraint_count() const { return lp_.constraint_count(); }

 private:
  LpModel lp_;
  std::vector<VarId> integer_vars_;
  std::vector<double> priorities_;  // parallel to lp_ variables
};

enum class IlpStatus {
  kOptimal,       // proven optimal incumbent
  kFeasible,      // incumbent found but search stopped early (limits)
  kInfeasible,    // proven: no integer-feasible point
  kLimitReached,  // limits hit with no incumbent — feasibility unknown
};

struct IlpResult {
  IlpStatus status = IlpStatus::kLimitReached;
  double objective = 0.0;       // incumbent objective (when an incumbent exists)
  std::vector<double> x;        // incumbent point (integers snapped exactly)
  long nodes_explored = 0;
  long lp_iterations = 0;       // total simplex pivots across all nodes
  double best_bound = 0.0;      // proven bound on the optimum

  bool has_solution() const {
    return status == IlpStatus::kOptimal || status == IlpStatus::kFeasible;
  }
};

struct IlpOptions {
  long max_nodes = 200'000;
  double time_limit_seconds = 60.0;
  // Stop as soon as any integer-feasible point is found. This is what the
  // schedule-length linear search uses: each stage is a pure feasibility
  // program.
  bool stop_at_first_feasible = false;
  double integrality_tol = 1e-6;
  // Prune nodes whose LP bound cannot beat the incumbent by more than this
  // (set to ~1 when the objective is integral to prune aggressively).
  double objective_gap_tol = 1e-9;
  LpOptions lp;
};

IlpResult solve_ilp(const IlpModel& model, const IlpOptions& options = {});

}  // namespace wimesh
